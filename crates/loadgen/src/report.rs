//! Per-run QoS reports and the paper's multi-trial aggregation protocol.
//!
//! The modified wrk2 outputs a latency histogram plus the violation
//! volume; the artifact's analysis step then, per configuration, "collects
//! 17 data-points for each controller, excludes the best and worst
//! data-points to remove extreme outliers, and averages the remaining 15".
//! Both steps are implemented here.

use crate::histogram::LatencyHistogram;
use serde::{Deserialize, Serialize};
use sg_core::time::{SimDuration, SimTime};
use sg_core::violation::{violation_rate, violation_volume, LatencyPoint};

/// QoS summary of one run over a measurement window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Requests completed inside the window.
    pub requests: u64,
    /// Violation volume (s²) against the QoS limit (§II-D).
    pub violation_volume: f64,
    /// Fraction of requests violating the QoS limit.
    pub violation_rate: f64,
    /// Mean latency.
    pub mean: SimDuration,
    /// P50 latency.
    pub p50: SimDuration,
    /// P98 latency (the paper's tail statistic).
    pub p98: SimDuration,
    /// P99.9 latency.
    pub p999: SimDuration,
    /// Maximum latency.
    pub max: SimDuration,
    /// Time-averaged allocated cores (from the simulator's meter).
    pub avg_cores: f64,
    /// Energy in joules (idle-subtracted).
    pub energy_j: f64,
}

impl RunReport {
    /// Build a report from completed-request points.
    ///
    /// `points` must be sorted by completion time (the simulator emits
    /// them that way). Only completions within `[window_start,
    /// window_end]` count.
    pub fn from_points(
        points: &[LatencyPoint],
        qos: SimDuration,
        window_start: SimTime,
        window_end: SimTime,
        avg_cores: f64,
        energy_j: f64,
    ) -> Self {
        let mut hist = LatencyHistogram::with_default_resolution();
        Self::from_points_reusing(
            &mut hist,
            points,
            qos,
            window_start,
            window_end,
            avg_cores,
            energy_j,
        )
    }

    /// [`RunReport::from_points`] with a caller-provided scratch
    /// histogram: `hist` is cleared, filled, and left holding this run's
    /// samples. A multi-trial harness passes the same histogram every
    /// trial so the bucket `Vec` is allocated once per worker, not once
    /// per trial. Results are identical to `from_points` (clearing resets
    /// every statistic).
    #[allow(clippy::too_many_arguments)]
    pub fn from_points_reusing(
        hist: &mut LatencyHistogram,
        points: &[LatencyPoint],
        qos: SimDuration,
        window_start: SimTime,
        window_end: SimTime,
        avg_cores: f64,
        energy_j: f64,
    ) -> Self {
        hist.clear();
        let mut n = 0u64;
        for p in points {
            if p.completion >= window_start && p.completion <= window_end {
                hist.record(p.latency);
                n += 1;
            }
        }
        let zero = SimDuration::ZERO;
        RunReport {
            requests: n,
            violation_volume: violation_volume(points, qos, window_start, window_end),
            violation_rate: violation_rate(points, qos, window_start, window_end),
            mean: hist.mean().unwrap_or(zero),
            p50: hist.percentile(50.0).unwrap_or(zero),
            p98: hist.percentile(98.0).unwrap_or(zero),
            p999: hist.percentile(99.9).unwrap_or(zero),
            max: hist.max().unwrap_or(zero),
            avg_cores,
            energy_j,
        }
    }
}

/// Trimmed mean over repeated trials: drop the single best and worst by
/// `key`, average the rest (the paper's 17→15 protocol). With fewer than
/// three samples, a plain mean of `key` is returned.
pub fn trimmed_mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    if samples.len() < 3 {
        return samples.iter().sum::<f64>() / samples.len() as f64;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let inner = &sorted[1..sorted.len() - 1];
    inner.iter().sum::<f64>() / inner.len() as f64
}

/// Aggregate a set of per-trial reports with the paper's protocol: each
/// scalar metric is trimmed-averaged independently.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AggregateReport {
    /// Number of trials aggregated.
    pub trials: usize,
    /// Trimmed-mean violation volume (s²).
    pub violation_volume: f64,
    /// Trimmed-mean violation rate.
    pub violation_rate: f64,
    /// Trimmed-mean P98 latency (seconds).
    pub p98_s: f64,
    /// Trimmed-mean average cores.
    pub avg_cores: f64,
    /// Trimmed-mean energy (J).
    pub energy_j: f64,
}

impl AggregateReport {
    /// Aggregate trial reports.
    pub fn from_reports(reports: &[RunReport]) -> Self {
        let get =
            |f: fn(&RunReport) -> f64| trimmed_mean(&reports.iter().map(f).collect::<Vec<_>>());
        AggregateReport {
            trials: reports.len(),
            violation_volume: get(|r| r.violation_volume),
            violation_rate: get(|r| r.violation_rate),
            p98_s: get(|r| r.p98.as_secs_f64()),
            avg_cores: get(|r| r.avg_cores),
            energy_j: get(|r| r.energy_j),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(ms: u64, lat_ms: u64) -> LatencyPoint {
        LatencyPoint {
            completion: SimTime::from_millis(ms),
            latency: SimDuration::from_millis(lat_ms),
        }
    }

    #[test]
    fn report_counts_window_only() {
        let pts = vec![pt(5, 1), pt(15, 1), pt(25, 1), pt(35, 1)];
        let r = RunReport::from_points(
            &pts,
            SimDuration::from_millis(10),
            SimTime::from_millis(10),
            SimTime::from_millis(30),
            4.0,
            100.0,
        );
        assert_eq!(r.requests, 2);
        assert_eq!(r.violation_volume, 0.0);
        assert_eq!(r.avg_cores, 4.0);
    }

    #[test]
    fn report_captures_violations() {
        let pts = vec![pt(10, 5), pt(20, 50), pt(30, 5)];
        let r = RunReport::from_points(
            &pts,
            SimDuration::from_millis(10),
            SimTime::ZERO,
            SimTime::from_millis(100),
            0.0,
            0.0,
        );
        assert!(r.violation_volume > 0.0);
        assert!((r.violation_rate - 1.0 / 3.0).abs() < 1e-12);
        assert!(r.max >= SimDuration::from_millis(49));
    }

    /// The scratch-histogram path must produce the identical report even
    /// when the scratch arrives dirty from a previous trial.
    #[test]
    fn from_points_reusing_matches_from_points() {
        let pts = vec![pt(10, 5), pt(20, 50), pt(30, 5), pt(40, 12)];
        let qos = SimDuration::from_millis(10);
        let (ws, we) = (SimTime::ZERO, SimTime::from_millis(100));
        let baseline = RunReport::from_points(&pts, qos, ws, we, 3.0, 42.0);
        let mut scratch = LatencyHistogram::with_default_resolution();
        for i in 0..5000 {
            scratch.record(SimDuration::from_micros(i)); // dirty it
        }
        let reused = RunReport::from_points_reusing(&mut scratch, &pts, qos, ws, we, 3.0, 42.0);
        assert_eq!(baseline.requests, reused.requests);
        assert_eq!(baseline.p50, reused.p50);
        assert_eq!(baseline.p98, reused.p98);
        assert_eq!(baseline.max, reused.max);
        assert_eq!(baseline.mean, reused.mean);
        assert!((baseline.violation_volume - reused.violation_volume).abs() < 1e-15);
    }

    #[test]
    fn trimmed_mean_drops_extremes() {
        // 17 samples: outliers 0 and 1000 dropped.
        let mut samples = vec![10.0; 15];
        samples.push(0.0);
        samples.push(1000.0);
        assert!((trimmed_mean(&samples) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn trimmed_mean_small_samples() {
        assert_eq!(trimmed_mean(&[]), 0.0);
        assert!((trimmed_mean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((trimmed_mean(&[2.0, 4.0]) - 3.0).abs() < 1e-12);
        // Exactly 3: drops both extremes, keeps the median.
        assert!((trimmed_mean(&[1.0, 5.0, 100.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_over_trials() {
        let mk = |vv: f64| RunReport {
            requests: 100,
            violation_volume: vv,
            violation_rate: 0.1,
            mean: SimDuration::from_millis(5),
            p50: SimDuration::from_millis(5),
            p98: SimDuration::from_millis(9),
            p999: SimDuration::from_millis(12),
            max: SimDuration::from_millis(20),
            avg_cores: 34.0,
            energy_j: 50.0,
        };
        let reports: Vec<RunReport> = [1.0, 2.0, 3.0, 4.0, 100.0].iter().map(|&v| mk(v)).collect();
        let agg = AggregateReport::from_reports(&reports);
        assert_eq!(agg.trials, 5);
        // Trim drops 1.0 and 100.0 → mean of (2,3,4) = 3.
        assert!((agg.violation_volume - 3.0).abs() < 1e-12);
        assert!((agg.avg_cores - 34.0).abs() < 1e-12);
    }
}
