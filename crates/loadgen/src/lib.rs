//! # sg-loadgen — open-loop spiking load generation and QoS reporting
//!
//! The equivalent of the paper's modified wrk2 (`wrk2_spike`, artifact
//! A₂):
//!
//! * [`spike`] — deterministic open-loop arrival schedules with periodic
//!   request-rate spikes (`-rate`, `-spikerate`, `-spikelen`), free of
//!   coordinated omission;
//! * [`profile`] — the [`ArrivalProfile`] abstraction over load shapes
//!   beyond the spike protocol: diurnal day/night cycles, seeded 2-state
//!   MMPP bursts, and trace-driven (CSV) rate timelines;
//! * [`stream`] — pull-based arrival generation: any profile served as a
//!   `sg_core::arrivals::ArrivalSource`, byte-identical to the batch
//!   schedule without materializing it;
//! * [`histogram`] — an HDR-style latency histogram (wrk2's reporting
//!   structure);
//! * [`report`] — per-run reports (violation volume, tails, cores,
//!   energy) and the paper's 17-trial trimmed-mean aggregation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod histogram;
pub mod profile;
pub mod report;
pub mod spike;
pub mod stream;

pub use histogram::LatencyHistogram;
pub use profile::{ArrivalProfile, DiurnalCurve, Mmpp, TraceProfile};
pub use report::{trimmed_mean, AggregateReport, RunReport};
pub use spike::{short_surge, SpikePattern};
pub use stream::ProfileStream;
