//! Streaming (batched) arrival generation.
//!
//! [`ArrivalProfile::stream`] turns any profile into a pull-based
//! [`ArrivalSource`] whose output is byte-identical to the fully
//! materialized [`ArrivalProfile::arrivals`] schedule, while holding only
//! cursor state: the current segment and in-segment arrival index for the
//! index-paced profiles, or the generator's RNG and dwell state for MMPP.
//! A cluster-scale run no longer pays O(total arrivals) memory for its
//! schedule — 10 million spike requests stream out of a few dozen
//! segment descriptors (SCALING.md §3).
//!
//! Equivalence argument, per family:
//!
//! * **Spike / diurnal / trace** render through the same
//!   segment-decomposition helpers the batch path uses, and each segment
//!   is paced by arrival index exactly as `pace_into` does — same
//!   segments, same per-index offsets, same timestamps.
//! * **MMPP** replays the batch generator's loop verbatim with the dwell
//!   state and RNG persisted across pulls; chunk boundaries never redraw.

use crate::profile::{exp_duration, ArrivalProfile, Mmpp};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sg_core::arrivals::ArrivalSource;
use sg_core::time::{paced_offset, SimDuration, SimTime};

/// Walks a finite list of half-open constant-rate segments, pacing each
/// from its own start by arrival index — the streaming twin of
/// `pace_into` over the same list.
#[derive(Debug)]
struct PacedSegments {
    /// `(start, end, rate)` segments, ascending and non-overlapping.
    segs: Vec<(SimTime, SimTime, f64)>,
    /// Current segment.
    seg: usize,
    /// Next arrival index within the current segment.
    i: u64,
}

impl PacedSegments {
    fn new(segs: Vec<(SimTime, SimTime, f64)>) -> Self {
        assert!(
            segs.iter().all(|&(_, _, rate)| rate > 0.0),
            "rate must be positive"
        );
        PacedSegments { segs, seg: 0, i: 0 }
    }

    fn next(&mut self) -> Option<SimTime> {
        while let Some(&(start, end, rate)) = self.segs.get(self.seg) {
            let t = start + paced_offset(self.i, rate);
            if t < end {
                self.i += 1;
                return Some(t);
            }
            self.seg += 1;
            self.i = 0;
        }
        None
    }
}

/// The MMPP generator loop with its state (clock, phase, dwell boundary,
/// RNG) persisted between pulls.
#[derive(Debug)]
struct MmppStream {
    low_rate: f64,
    high_rate: f64,
    mean_dwell_low: SimDuration,
    mean_dwell_high: SimDuration,
    rng: SmallRng,
    t: SimTime,
    end: SimTime,
    high: bool,
    state_end: SimTime,
}

impl MmppStream {
    fn new(m: &Mmpp, start: SimTime, end: SimTime) -> Self {
        assert!(
            m.low_rate > 0.0 && m.high_rate > 0.0,
            "rates must be positive"
        );
        assert!(
            !m.mean_dwell_low.is_zero() && !m.mean_dwell_high.is_zero(),
            "dwell times must be positive"
        );
        let mut rng = SmallRng::seed_from_u64(m.seed);
        let state_end = start + exp_duration(&mut rng, m.mean_dwell_low);
        MmppStream {
            low_rate: m.low_rate,
            high_rate: m.high_rate,
            mean_dwell_low: m.mean_dwell_low,
            mean_dwell_high: m.mean_dwell_high,
            rng,
            t: start,
            end,
            high: false,
            state_end,
        }
    }

    fn next(&mut self) -> Option<SimTime> {
        while self.t < self.end {
            let rate = if self.high {
                self.high_rate
            } else {
                self.low_rate
            };
            let next = self.t + exp_duration(&mut self.rng, SimDuration::from_secs_f64(1.0 / rate));
            if next >= self.state_end {
                // Crossing a dwell boundary discards the in-flight gap
                // and redraws at the new rate (memorylessness) — exactly
                // what the batch generator does.
                self.t = self.state_end;
                self.high = !self.high;
                let dwell = if self.high {
                    self.mean_dwell_high
                } else {
                    self.mean_dwell_low
                };
                self.state_end = self.t + exp_duration(&mut self.rng, dwell);
                continue;
            }
            self.t = next;
            if self.t >= self.end {
                return None;
            }
            return Some(self.t);
        }
        None
    }
}

#[derive(Debug)]
enum Inner {
    Paced(PacedSegments),
    Mmpp(MmppStream),
}

/// A profile's arrival schedule served as a pull-based stream.
///
/// Built by [`ArrivalProfile::stream`]; yields exactly the timestamps of
/// the batch schedule over the same window, in order.
#[derive(Debug)]
pub struct ProfileStream {
    inner: Inner,
}

impl ArrivalSource for ProfileStream {
    fn next_arrival(&mut self) -> Option<SimTime> {
        match &mut self.inner {
            Inner::Paced(p) => p.next(),
            Inner::Mmpp(m) => m.next(),
        }
    }
}

impl ArrivalProfile {
    /// Stream the deterministic arrival schedule over `[start, end)`:
    /// byte-identical to [`ArrivalProfile::arrivals`] without ever
    /// materializing it.
    pub fn stream(&self, start: SimTime, end: SimTime) -> ProfileStream {
        let inner = match self {
            ArrivalProfile::Spike(p) => {
                assert!(
                    p.base_rate > 0.0 && p.spike_rate > 0.0,
                    "rates must be positive"
                );
                Inner::Paced(PacedSegments::new(p.segments(start, end)))
            }
            ArrivalProfile::Diurnal(c) => Inner::Paced(PacedSegments::new(c.segments(start, end))),
            ArrivalProfile::Trace(t) => Inner::Paced(PacedSegments::new(t.segments(start, end))),
            ArrivalProfile::Mmpp(m) => Inner::Mmpp(MmppStream::new(m, start, end)),
        };
        ProfileStream { inner }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{DiurnalCurve, TraceProfile};
    use crate::spike::SpikePattern;

    fn drain(mut s: ProfileStream) -> Vec<SimTime> {
        let mut out = Vec::new();
        while let Some(t) = s.next_arrival() {
            out.push(t);
        }
        out
    }

    fn assert_stream_matches(profile: ArrivalProfile, start: SimTime, end: SimTime) {
        let full = profile.arrivals(start, end);
        let streamed = drain(profile.stream(start, end));
        assert_eq!(
            full,
            streamed,
            "{} stream diverged from batch schedule",
            profile.label()
        );
    }

    #[test]
    fn spike_stream_is_byte_identical() {
        let p = SpikePattern::periodic(1000.0, 2.0, SimDuration::from_secs(2));
        assert_stream_matches(
            ArrivalProfile::Spike(p),
            SimTime::ZERO,
            SimTime::from_secs(30),
        );
        // Window not aligned to spike boundaries.
        assert_stream_matches(
            ArrivalProfile::Spike(p),
            SimTime::from_millis(10_500),
            SimTime::from_millis(23_750),
        );
    }

    #[test]
    fn diurnal_stream_is_byte_identical() {
        let c = DiurnalCurve::day_night(600.0, 1600.0, SimDuration::from_secs(60));
        assert_stream_matches(
            ArrivalProfile::Diurnal(c.clone()),
            SimTime::ZERO,
            SimTime::from_secs(120),
        );
        assert_stream_matches(
            ArrivalProfile::Diurnal(c),
            SimTime::from_secs(95),
            SimTime::from_secs(130),
        );
    }

    #[test]
    fn mmpp_stream_is_byte_identical() {
        let m = Mmpp::bursty(2000.0, 42);
        assert_stream_matches(
            ArrivalProfile::Mmpp(m.clone()),
            SimTime::ZERO,
            SimTime::from_secs(30),
        );
        // Same profile, different window: the dwell walk starts at the
        // window start (matching the batch generator's semantics).
        assert_stream_matches(
            ArrivalProfile::Mmpp(m),
            SimTime::from_secs(3),
            SimTime::from_secs(17),
        );
    }

    #[test]
    fn trace_stream_is_byte_identical() {
        let t = TraceProfile::from_csv_str("0,100\n10,300\n20,200\n").unwrap();
        assert_stream_matches(
            ArrivalProfile::Trace(t.clone()),
            SimTime::ZERO,
            SimTime::from_secs(60),
        );
        assert_stream_matches(
            ArrivalProfile::Trace(t),
            SimTime::from_secs(35),
            SimTime::from_secs(55),
        );
    }

    #[test]
    fn chunked_pulls_match_one_at_a_time() {
        let p = ArrivalProfile::Spike(SpikePattern::constant(997.0));
        let full = p.arrivals(SimTime::ZERO, SimTime::from_secs(10));
        let mut src = p.stream(SimTime::ZERO, SimTime::from_secs(10));
        let mut chunked = Vec::new();
        // Odd chunk size so chunk boundaries never align with segments.
        while src.next_chunk(&mut chunked, 777) > 0 {}
        assert_eq!(full, chunked);
    }

    #[test]
    fn exhausted_stream_stays_exhausted() {
        let p = ArrivalProfile::Spike(SpikePattern::constant(10.0));
        let mut src = p.stream(SimTime::ZERO, SimTime::from_secs(1));
        while src.next_arrival().is_some() {}
        assert_eq!(src.next_arrival(), None);
    }
}
