//! Arrival profiles beyond the periodic spike: diurnal curves, MMPP
//! bursts, and trace-driven load.
//!
//! The paper's evaluation drives every experiment with the wrk2-style
//! periodic spike ([`crate::SpikePattern`]). Real services see other
//! shapes: day/night cycles, bursty status-shifting load (StatuScale,
//! arXiv:2407.10173), and whatever a production trace happened to record.
//! [`ArrivalProfile`] is the common abstraction: every variant renders to
//! a deterministic arrival schedule over `[start, end)` — a pure function
//! of the profile (and its embedded seed), so schedules are byte-identical
//! across reruns and thread counts, matching the parallel-harness
//! determinism contract.
//!
//! All deterministic generators pace each constant-rate segment from its
//! own start by arrival index ([`paced_offset`]) so long schedules never
//! accumulate period-truncation drift.

use crate::spike::SpikePattern;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use sg_core::time::{paced_offset, SimDuration, SimTime};

/// Append the deterministically paced arrivals of a constant-rate segment
/// `[start, end)` to `out`. Each timestamp is derived from its index so
/// the segment's realized rate is exact to ±0.5 ns per arrival.
pub(crate) fn pace_into(out: &mut Vec<SimTime>, start: SimTime, end: SimTime, rate: f64) {
    assert!(rate > 0.0, "rate must be positive");
    for i in 0u64.. {
        let t = start + paced_offset(i, rate);
        if t >= end {
            break;
        }
        out.push(t);
    }
}

/// A piecewise-constant day/night request-rate cycle.
///
/// `steps` is one full cycle: `(length, rate)` segments applied in order
/// and repeated forever from time zero. Experiments compress a "day" into
/// tens of seconds; the shape, not the wall duration, is what exercises a
/// scaling policy.
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalCurve {
    steps: Vec<(SimDuration, f64)>,
}

impl DiurnalCurve {
    /// Build a curve from explicit `(length, rate)` steps.
    pub fn new(steps: Vec<(SimDuration, f64)>) -> Self {
        assert!(!steps.is_empty(), "diurnal curve needs at least one step");
        assert!(
            steps
                .iter()
                .all(|&(len, rate)| !len.is_zero() && rate > 0.0),
            "diurnal steps need positive length and rate"
        );
        DiurnalCurve { steps }
    }

    /// The canonical day/night shape: night trough at `night_rate`, day
    /// plateau at `day_rate`, with half-way ramps in between — four equal
    /// quarters of `cycle` (night, morning, day, evening).
    pub fn day_night(night_rate: f64, day_rate: f64, cycle: SimDuration) -> Self {
        let quarter = SimDuration::from_nanos((cycle.as_nanos() / 4).max(1));
        let mid = (night_rate + day_rate) / 2.0;
        DiurnalCurve::new(vec![
            (quarter, night_rate),
            (quarter, mid),
            (quarter, day_rate),
            (quarter, mid),
        ])
    }

    /// Length of one full cycle.
    pub fn cycle_len(&self) -> SimDuration {
        self.steps
            .iter()
            .fold(SimDuration::ZERO, |acc, &(len, _)| acc + len)
    }

    /// Time-weighted mean rate over one cycle.
    pub fn mean_rate(&self) -> f64 {
        let total = self.cycle_len().as_secs_f64();
        self.steps
            .iter()
            .map(|&(len, rate)| rate * len.as_secs_f64())
            .sum::<f64>()
            / total
    }

    /// Instantaneous rate at `t` (cycles repeat from time zero).
    pub fn rate_at(&self, t: SimTime) -> f64 {
        let cycle = self.cycle_len().as_nanos();
        let mut into = t.as_nanos() % cycle;
        for &(len, rate) in &self.steps {
            if into < len.as_nanos() {
                return rate;
            }
            into -= len.as_nanos();
        }
        self.steps.last().unwrap().1
    }

    /// Deterministic arrival schedule over `[start, end)`: each step
    /// boundary starts a fresh index-paced segment.
    pub fn arrivals(&self, start: SimTime, end: SimTime) -> Vec<SimTime> {
        let mut out = Vec::new();
        for (s, e, rate) in self.segments(start, end) {
            pace_into(&mut out, s, e, rate);
        }
        out
    }

    /// Constant-rate segments covering `[start, end)`, clamped to the
    /// window: each step boundary (cycles repeat from time zero) starts a
    /// fresh segment.
    pub(crate) fn segments(&self, start: SimTime, end: SimTime) -> Vec<(SimTime, SimTime, f64)> {
        let mut segs = Vec::new();
        let cycle = self.cycle_len().as_nanos();
        // First step boundary at or before `start`.
        let mut seg_start = SimTime::from_nanos(t_floor(start.as_nanos(), cycle));
        'outer: loop {
            for &(len, rate) in &self.steps {
                let seg_end = seg_start + len;
                if seg_end > start {
                    segs.push((seg_start.max(start), seg_end.min(end), rate));
                }
                seg_start = seg_end;
                if seg_start >= end {
                    break 'outer;
                }
            }
        }
        segs
    }
}

/// Largest multiple of `cycle` that is `<= t`.
fn t_floor(t: u64, cycle: u64) -> u64 {
    (t / cycle) * cycle
}

/// A 2-state Markov-modulated Poisson process: the workhorse bursty
/// arrival model. The process alternates between a low-rate and a
/// high-rate state with exponentially distributed dwell times; within a
/// state, arrivals are Poisson at the state's rate. Fully determined by
/// the embedded seed.
#[derive(Debug, Clone, PartialEq)]
pub struct Mmpp {
    /// Arrival rate (req/s) in the quiet state.
    pub low_rate: f64,
    /// Arrival rate (req/s) in the burst state.
    pub high_rate: f64,
    /// Mean dwell time in the quiet state.
    pub mean_dwell_low: SimDuration,
    /// Mean dwell time in the burst state.
    pub mean_dwell_high: SimDuration,
    /// RNG seed: the schedule is a pure function of `(self, start, end)`.
    pub seed: u64,
}

impl Mmpp {
    /// A bursty profile around `base_rate`: quiet at `0.7×` with 2 s mean
    /// dwell, bursting to `2.2×` for 500 ms mean dwell — the weights are
    /// chosen so the long-run mean rate is exactly `base_rate`.
    pub fn bursty(base_rate: f64, seed: u64) -> Self {
        Mmpp {
            low_rate: 0.7 * base_rate,
            high_rate: 2.2 * base_rate,
            mean_dwell_low: SimDuration::from_secs(2),
            mean_dwell_high: SimDuration::from_millis(500),
            seed,
        }
    }

    /// Long-run mean rate: dwell-weighted average of the two state rates.
    pub fn mean_rate(&self) -> f64 {
        let lo = self.mean_dwell_low.as_secs_f64();
        let hi = self.mean_dwell_high.as_secs_f64();
        (self.low_rate * lo + self.high_rate * hi) / (lo + hi)
    }

    /// Deterministic (seeded) arrival schedule over `[start, end)`.
    ///
    /// State switches are sampled first, arrivals within each dwell from
    /// the same stream; crossing a state boundary discards the in-flight
    /// exponential gap and redraws at the new rate, which is
    /// distributionally exact for a Poisson process (memorylessness).
    pub fn arrivals(&self, start: SimTime, end: SimTime) -> Vec<SimTime> {
        assert!(
            self.low_rate > 0.0 && self.high_rate > 0.0,
            "rates must be positive"
        );
        assert!(
            !self.mean_dwell_low.is_zero() && !self.mean_dwell_high.is_zero(),
            "dwell times must be positive"
        );
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut out = Vec::new();
        let mut t = start;
        let mut high = false;
        let mut state_end = start + exp_duration(&mut rng, self.mean_dwell_low);
        while t < end {
            let rate = if high { self.high_rate } else { self.low_rate };
            let next = t + exp_duration(&mut rng, SimDuration::from_secs_f64(1.0 / rate));
            if next >= state_end {
                t = state_end;
                high = !high;
                let dwell = if high {
                    self.mean_dwell_high
                } else {
                    self.mean_dwell_low
                };
                state_end = t + exp_duration(&mut rng, dwell);
                continue;
            }
            t = next;
            if t >= end {
                break;
            }
            out.push(t);
        }
        out
    }
}

/// One exponential draw with the given mean, floored at 1 ns so schedules
/// always make progress.
pub(crate) fn exp_duration(rng: &mut SmallRng, mean: SimDuration) -> SimDuration {
    let u: f64 = rng.random();
    mean.mul_f64(-(1.0 - u).ln())
        .max(SimDuration::from_nanos(1))
}

/// A piecewise-constant rate timeline read from a CSV trace — the
/// Google-cluster-trace-style workload input. Each row is
/// `offset_seconds,requests_per_second`; the rate holds from its offset
/// until the next row's. The trace repeats cyclically when the run window
/// outlives it, so a short committed sample can drive a long experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceProfile {
    /// `(offset from trace start, rate)` breakpoints, strictly increasing.
    points: Vec<(SimDuration, f64)>,
    /// Total trace length (the last segment is as long as its
    /// predecessor, or 1 s for a single-row trace).
    len: SimDuration,
}

impl TraceProfile {
    /// Parse a trace from CSV text. Lines starting with `#` and a
    /// non-numeric header row are skipped.
    pub fn from_csv_str(text: &str) -> Result<Self, String> {
        let mut points: Vec<(SimDuration, f64)> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut cols = line.split(',').map(str::trim);
            let (Some(a), Some(b)) = (cols.next(), cols.next()) else {
                return Err(format!("trace line {}: expected 2 columns", lineno + 1));
            };
            let (Ok(off_s), Ok(rate)) = (a.parse::<f64>(), b.parse::<f64>()) else {
                if points.is_empty() {
                    continue; // header row
                }
                return Err(format!("trace line {}: non-numeric row", lineno + 1));
            };
            if off_s < 0.0 || !rate.is_finite() || rate <= 0.0 {
                return Err(format!(
                    "trace line {}: offsets must be >= 0 and rates positive",
                    lineno + 1
                ));
            }
            let off = SimDuration::from_secs_f64(off_s);
            if let Some(&(prev, _)) = points.last() {
                if off <= prev {
                    return Err(format!(
                        "trace line {}: offsets must be strictly increasing",
                        lineno + 1
                    ));
                }
            }
            points.push((off, rate));
        }
        if points.is_empty() {
            return Err("trace has no data rows".into());
        }
        let len = match points.len() {
            1 => points[0].0 + SimDuration::from_secs(1),
            n => {
                let last = points[n - 1].0;
                last + (last - points[n - 2].0)
            }
        };
        Ok(TraceProfile { points, len })
    }

    /// Load a trace from a CSV file on disk.
    pub fn load(path: &str) -> Result<Self, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read trace {path}: {e}"))?;
        Self::from_csv_str(&text)
    }

    /// Total trace length (the period at which it repeats).
    pub fn trace_len(&self) -> SimDuration {
        self.len
    }

    /// Time-weighted mean rate over one trace period.
    pub fn mean_rate(&self) -> f64 {
        let mut weighted = 0.0;
        for (i, &(off, rate)) in self.points.iter().enumerate() {
            let seg_end = self.points.get(i + 1).map(|&(o, _)| o).unwrap_or(self.len);
            weighted += rate * (seg_end - off).as_secs_f64();
        }
        weighted / self.len.as_secs_f64()
    }

    /// Rescale all rates so the trace's mean rate equals `target` —
    /// calibrated workloads keep their knee-anchored base rate while the
    /// trace contributes only its *shape*.
    pub fn scaled_to_mean(mut self, target: f64) -> Self {
        assert!(target > 0.0, "target mean rate must be positive");
        let k = target / self.mean_rate();
        for (_, rate) in &mut self.points {
            *rate *= k;
        }
        self
    }

    /// Instantaneous rate at `t` (the trace repeats cyclically).
    pub fn rate_at(&self, t: SimTime) -> f64 {
        let into = SimDuration::from_nanos(t.as_nanos() % self.len.as_nanos());
        let mut rate = self.points.last().unwrap().1;
        for &(off, r) in self.points.iter().rev() {
            if into >= off {
                return r;
            }
            rate = r;
        }
        // Before the first breakpoint (possible when the trace does not
        // start at offset 0): hold the first row's rate.
        rate
    }

    /// Deterministic arrival schedule over `[start, end)`: each trace
    /// segment (repeated cyclically) is an index-paced constant-rate run.
    pub fn arrivals(&self, start: SimTime, end: SimTime) -> Vec<SimTime> {
        let mut out = Vec::new();
        for (s, e, rate) in self.segments(start, end) {
            pace_into(&mut out, s, e, rate);
        }
        out
    }

    /// Constant-rate segments covering `[start, end)`, clamped to the
    /// window (the trace repeats cyclically).
    pub(crate) fn segments(&self, start: SimTime, end: SimTime) -> Vec<(SimTime, SimTime, f64)> {
        let mut segs = Vec::new();
        let cycle = self.len.as_nanos();
        let mut cycle_start = SimTime::from_nanos(t_floor(start.as_nanos(), cycle));
        'outer: loop {
            for (i, &(off, rate)) in self.points.iter().enumerate() {
                let seg_start = cycle_start + off;
                let seg_end =
                    cycle_start + self.points.get(i + 1).map(|&(o, _)| o).unwrap_or(self.len);
                if seg_end > start && seg_start < end {
                    segs.push((seg_start.max(start), seg_end.min(end), rate));
                }
                if seg_start >= end {
                    break 'outer;
                }
            }
            cycle_start += self.len;
            if cycle_start >= end {
                break;
            }
        }
        segs
    }
}

/// The profile abstraction behind `--profile`: every variant renders to a
/// deterministic arrival schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProfile {
    /// The paper's periodic-spike protocol (or a constant rate).
    Spike(SpikePattern),
    /// Piecewise day/night cycle.
    Diurnal(DiurnalCurve),
    /// 2-state Markov-modulated Poisson bursts.
    Mmpp(Mmpp),
    /// Trace-driven piecewise-constant rate.
    Trace(TraceProfile),
}

impl ArrivalProfile {
    /// Parse a `--profile` spec: `spike`, `diurnal`, `mmpp`, or
    /// `trace:PATH`. `spike_pattern` supplies the spike protocol (and its
    /// base rate anchors the synthetic variants: diurnal swings
    /// 0.6–1.6×, MMPP bursts 0.7→2.2× with mean exactly 1×, traces are
    /// rescaled so their mean rate equals the base rate).
    pub fn parse(spec: &str, spike_pattern: SpikePattern, seed: u64) -> Result<Self, String> {
        let base = spike_pattern.base_rate;
        match spec {
            "spike" => Ok(ArrivalProfile::Spike(spike_pattern)),
            "diurnal" => Ok(ArrivalProfile::Diurnal(DiurnalCurve::day_night(
                0.6 * base,
                1.6 * base,
                SimDuration::from_secs(60),
            ))),
            "mmpp" => Ok(ArrivalProfile::Mmpp(Mmpp::bursty(base, seed))),
            other => match other.strip_prefix("trace:") {
                Some(path) => {
                    TraceProfile::load(path).map(|t| ArrivalProfile::Trace(t.scaled_to_mean(base)))
                }
                None => Err(format!(
                    "unknown profile '{other}' (expected spike, diurnal, mmpp, or trace:PATH)"
                )),
            },
        }
    }

    /// Profile family name, for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalProfile::Spike(_) => "spike",
            ArrivalProfile::Diurnal(_) => "diurnal",
            ArrivalProfile::Mmpp(_) => "mmpp",
            ArrivalProfile::Trace(_) => "trace",
        }
    }

    /// Render the deterministic arrival schedule over `[start, end)`.
    pub fn arrivals(&self, start: SimTime, end: SimTime) -> Vec<SimTime> {
        match self {
            ArrivalProfile::Spike(p) => p.arrivals(start, end),
            ArrivalProfile::Diurnal(c) => c.arrivals(start, end),
            ArrivalProfile::Mmpp(m) => m.arrivals(start, end),
            ArrivalProfile::Trace(t) => t.arrivals(start, end),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diurnal_rate_follows_steps() {
        let c = DiurnalCurve::day_night(600.0, 1600.0, SimDuration::from_secs(60));
        assert_eq!(c.cycle_len(), SimDuration::from_secs(60));
        assert_eq!(c.rate_at(SimTime::ZERO), 600.0);
        assert_eq!(c.rate_at(SimTime::from_secs(20)), 1100.0);
        assert_eq!(c.rate_at(SimTime::from_secs(35)), 1600.0);
        assert_eq!(c.rate_at(SimTime::from_secs(50)), 1100.0);
        // Cycles repeat.
        assert_eq!(c.rate_at(SimTime::from_secs(95)), 1600.0);
        assert!((c.mean_rate() - 1100.0).abs() < 1e-9);
    }

    #[test]
    fn diurnal_mean_rate_converges_within_one_percent() {
        let c = DiurnalCurve::day_night(600.0, 1600.0, SimDuration::from_secs(60));
        let dur = 600.0; // 10 cycles
        let a = c.arrivals(SimTime::ZERO, SimTime::from_secs(600));
        let realized = a.len() as f64 / dur;
        let err = (realized - c.mean_rate()).abs() / c.mean_rate();
        assert!(err < 0.01, "diurnal mean off by {:.3}%", err * 100.0);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn diurnal_windows_not_aligned_to_cycle() {
        let c = DiurnalCurve::day_night(100.0, 300.0, SimDuration::from_secs(40));
        let a = c.arrivals(SimTime::from_secs(95), SimTime::from_secs(130));
        assert!(!a.is_empty());
        assert!(*a.first().unwrap() >= SimTime::from_secs(95));
        assert!(*a.last().unwrap() < SimTime::from_secs(130));
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        // Suffix property: a window starting mid-cycle reproduces the tail
        // of the full schedule (deterministic pacing is anchored to step
        // boundaries, not the query window).
        let full = c.arrivals(SimTime::ZERO, SimTime::from_secs(130));
        let tail: Vec<_> = full
            .iter()
            .copied()
            .filter(|&t| t >= SimTime::from_secs(95))
            .collect();
        assert_eq!(a, tail);
    }

    #[test]
    fn mmpp_is_seed_deterministic_and_seed_sensitive() {
        let m = Mmpp::bursty(1000.0, 42);
        let a = m.arrivals(SimTime::ZERO, SimTime::from_secs(30));
        let b = m.arrivals(SimTime::ZERO, SimTime::from_secs(30));
        assert_eq!(a, b, "same seed must give byte-identical schedules");
        let c = Mmpp::bursty(1000.0, 43).arrivals(SimTime::ZERO, SimTime::from_secs(30));
        assert_ne!(a, c, "different seeds must differ");
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }

    /// The PR 4 parallel-harness contract: schedules generated on worker
    /// threads are byte-identical to the serial ones.
    #[test]
    fn mmpp_schedules_identical_across_threads() {
        let serial = Mmpp::bursty(2000.0, 7).arrivals(SimTime::ZERO, SimTime::from_secs(10));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let expect = serial.clone();
                std::thread::spawn(move || {
                    let got =
                        Mmpp::bursty(2000.0, 7).arrivals(SimTime::ZERO, SimTime::from_secs(10));
                    got == expect
                })
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap(), "thread-generated schedule diverged");
        }
    }

    #[test]
    fn mmpp_mean_rate_converges_within_one_percent() {
        // Short dwells → many state cycles → tight convergence. The
        // schedule is seeded and thus deterministic; this pins that the
        // generator's realized mean matches its analytic mean.
        let m = Mmpp {
            low_rate: 700.0,
            high_rate: 2200.0,
            mean_dwell_low: SimDuration::from_millis(500),
            mean_dwell_high: SimDuration::from_millis(125),
            seed: 11,
        };
        let dur = 600.0;
        let a = m.arrivals(SimTime::ZERO, SimTime::from_secs(600));
        let realized = a.len() as f64 / dur;
        let err = (realized - m.mean_rate()).abs() / m.mean_rate();
        assert!(err < 0.01, "mmpp mean off by {:.3}%", err * 100.0);
    }

    #[test]
    fn trace_parses_scales_and_loops() {
        let t = TraceProfile::from_csv_str("# demo trace\ntime_s,rate\n0,100\n10,300\n20,200\n")
            .unwrap();
        assert_eq!(t.trace_len(), SimDuration::from_secs(30));
        assert!((t.mean_rate() - 200.0).abs() < 1e-9);
        assert_eq!(t.rate_at(SimTime::from_secs(5)), 100.0);
        assert_eq!(t.rate_at(SimTime::from_secs(15)), 300.0);
        assert_eq!(t.rate_at(SimTime::from_secs(25)), 200.0);
        // Cyclic repetition.
        assert_eq!(t.rate_at(SimTime::from_secs(35)), 100.0);

        let scaled = t.clone().scaled_to_mean(1000.0);
        assert!((scaled.mean_rate() - 1000.0).abs() < 1e-6);

        // Arrival counts per segment are exact (index pacing).
        let a = t.arrivals(SimTime::ZERO, SimTime::from_secs(60));
        assert_eq!(a.len(), 2 * (1000 + 3000 + 2000));
        assert!(a.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn trace_rejects_garbage() {
        assert!(TraceProfile::from_csv_str("").is_err());
        assert!(TraceProfile::from_csv_str("# only comments\n").is_err());
        assert!(
            TraceProfile::from_csv_str("0,100\n0,200\n").is_err(),
            "non-increasing offsets"
        );
        assert!(
            TraceProfile::from_csv_str("0,-5\n").is_err(),
            "negative rate"
        );
        assert!(TraceProfile::from_csv_str("0,100\nbogus,row\n").is_err());
    }

    #[test]
    fn profile_parse_dispatches() {
        let spike = SpikePattern::constant(1000.0);
        assert_eq!(
            ArrivalProfile::parse("spike", spike, 1).unwrap().label(),
            "spike"
        );
        let d = ArrivalProfile::parse("diurnal", spike, 1).unwrap();
        assert_eq!(d.label(), "diurnal");
        let m = ArrivalProfile::parse("mmpp", spike, 1).unwrap();
        assert_eq!(m.label(), "mmpp");
        if let ArrivalProfile::Mmpp(m) = &m {
            assert!((m.mean_rate() - 1000.0).abs() < 1e-9);
        } else {
            panic!("expected mmpp variant");
        }
        assert!(ArrivalProfile::parse("nope", spike, 1).is_err());
        assert!(ArrivalProfile::parse("trace:/no/such/file.csv", spike, 1).is_err());
    }
}
