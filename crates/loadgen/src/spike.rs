//! Spiking open-loop load patterns — the `wrk2_spike` equivalent.
//!
//! The paper modifies wrk2 to inject request-rate spikes with three knobs:
//! `-rate` (steady state), `-spikerate` (rate during the spike) and
//! `-spikelen` (spike duration); spikes repeat periodically (§VI-B:
//! "injecting 2s long request rate surges every 10s"). Arrivals are
//! deterministically paced at the instantaneous rate, wrk2-style, so the
//! measured latencies are free of coordinated omission by construction.

use serde::{Deserialize, Serialize};
use sg_core::time::{SimDuration, SimTime};

/// A periodic request-rate spike pattern.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpikePattern {
    /// Steady-state request rate (req/s) — wrk2's `-rate`.
    pub base_rate: f64,
    /// Request rate during a spike — wrk2's `-spikerate`.
    pub spike_rate: f64,
    /// Spike duration — wrk2's `-spikelen`.
    pub spike_len: SimDuration,
    /// Spike period (start-to-start).
    pub period: SimDuration,
    /// Start of the first spike.
    pub first_spike: SimTime,
}

impl SpikePattern {
    /// A constant-rate pattern (no spikes).
    pub fn constant(rate: f64) -> Self {
        SpikePattern {
            base_rate: rate,
            spike_rate: rate,
            spike_len: SimDuration::ZERO,
            period: SimDuration::from_secs(10),
            first_spike: SimTime::ZERO,
        }
    }

    /// The paper's §VI-B protocol: spikes of `magnitude × base` lasting
    /// `spike_len`, every 10 s, first spike after one full period.
    pub fn periodic(base_rate: f64, magnitude: f64, spike_len: SimDuration) -> Self {
        SpikePattern {
            base_rate,
            spike_rate: base_rate * magnitude,
            spike_len,
            period: SimDuration::from_secs(10),
            first_spike: SimTime::from_secs(10),
        }
    }

    /// Instantaneous rate at `t`.
    ///
    /// Spike windows are half-open: at `into_period == spike_len` exactly
    /// the rate is already back to base. A zero `period` (possible for
    /// hand-built `constant()`-like patterns) never divides — the pattern
    /// is simply flat at the base rate.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        if self.spike_len.is_zero() || self.period.is_zero() || t < self.first_spike {
            return self.base_rate;
        }
        let since = t.saturating_since(self.first_spike);
        let into_period = SimDuration::from_nanos(since.as_nanos() % self.period.as_nanos());
        if into_period < self.spike_len {
            self.spike_rate
        } else {
            self.base_rate
        }
    }

    /// True if `t` falls inside a spike window.
    pub fn in_spike(&self, t: SimTime) -> bool {
        self.spike_len > SimDuration::ZERO && self.rate_at(t) == self.spike_rate
    }

    /// Deterministically paced arrival schedule over `[start, end)`.
    ///
    /// The window is decomposed into constant-rate segments (base/spike
    /// alternation) and each segment is paced from its own start by
    /// arrival *index* ([`sg_core::time::paced_offset`]), so the realized
    /// rate of every segment stays within ±0.5 ns of nominal regardless
    /// of schedule length — no cumulative period-truncation drift.
    pub fn arrivals(&self, start: SimTime, end: SimTime) -> Vec<SimTime> {
        assert!(
            self.base_rate > 0.0 && self.spike_rate > 0.0,
            "rates must be positive"
        );
        let mut out = Vec::new();
        for (s, e, rate) in self.segments(start, end) {
            crate::profile::pace_into(&mut out, s, e, rate);
        }
        out
    }

    /// Decompose `[start, end)` into half-open constant-rate segments.
    pub(crate) fn segments(&self, start: SimTime, end: SimTime) -> Vec<(SimTime, SimTime, f64)> {
        let mut segs = Vec::new();
        let mut cursor = start;
        for (ws, we) in self.spike_windows(start, end) {
            if ws > cursor {
                segs.push((cursor, ws, self.base_rate));
            }
            segs.push((ws, we, self.spike_rate));
            cursor = we;
        }
        if cursor < end {
            segs.push((cursor, end, self.base_rate));
        }
        segs
    }

    /// Spike windows intersecting `[start, end)`, for plotting/analysis.
    /// A zero `period` cannot repeat, so such patterns have no windows.
    pub fn spike_windows(&self, start: SimTime, end: SimTime) -> Vec<(SimTime, SimTime)> {
        let mut out = Vec::new();
        if self.spike_len.is_zero() || self.period.is_zero() {
            return out;
        }
        let mut s = self.first_spike;
        while s < end {
            let e = s + self.spike_len;
            if e > start {
                out.push((s.max(start), e.min(end)));
            }
            s += self.period;
        }
        out
    }
}

/// Pattern for the FirstResponder short-surge experiments (Fig. 10):
/// instantaneous rate 20× the base for sub-millisecond windows, repeated
/// every `period`.
pub fn short_surge(base_rate: f64, surge_len: SimDuration, period: SimDuration) -> SpikePattern {
    SpikePattern {
        base_rate,
        spike_rate: base_rate * 20.0,
        spike_len: surge_len,
        period,
        first_spike: SimTime::ZERO + period,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_pattern_is_flat() {
        let p = SpikePattern::constant(1000.0);
        assert_eq!(p.rate_at(SimTime::ZERO), 1000.0);
        assert_eq!(p.rate_at(SimTime::from_secs(100)), 1000.0);
        assert!(!p.in_spike(SimTime::from_secs(15)));
        let a = p.arrivals(SimTime::ZERO, SimTime::from_secs(1));
        assert_eq!(a.len(), 1000);
    }

    #[test]
    fn periodic_pattern_alternates() {
        let p = SpikePattern::periodic(1000.0, 1.75, SimDuration::from_secs(2));
        // Before the first spike.
        assert_eq!(p.rate_at(SimTime::from_secs(5)), 1000.0);
        // Inside the first spike [10, 12).
        assert_eq!(p.rate_at(SimTime::from_secs(10)), 1750.0);
        assert_eq!(p.rate_at(SimTime::from_secs(11)), 1750.0);
        assert!(p.in_spike(SimTime::from_secs(11)));
        // After it.
        assert_eq!(p.rate_at(SimTime::from_secs(13)), 1000.0);
        // Second spike [20, 22).
        assert_eq!(p.rate_at(SimTime::from_secs(21)), 1750.0);
    }

    #[test]
    fn arrival_count_reflects_spikes() {
        let base = SpikePattern::constant(1000.0)
            .arrivals(SimTime::ZERO, SimTime::from_secs(30))
            .len();
        let spiky = SpikePattern::periodic(1000.0, 2.0, SimDuration::from_secs(2))
            .arrivals(SimTime::ZERO, SimTime::from_secs(30))
            .len();
        // Two spikes in [0,30): [10,12) and [20,22): each adds ~1000×2s.
        let extra = spiky as i64 - base as i64;
        assert!(
            (extra - 4000).abs() < 100,
            "expected ~4000 extra arrivals, got {extra}"
        );
    }

    #[test]
    fn arrivals_sorted_and_in_range() {
        let p = SpikePattern::periodic(500.0, 1.5, SimDuration::from_millis(100));
        let a = p.arrivals(SimTime::from_secs(1), SimTime::from_secs(5));
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        assert!(a.first().unwrap() >= &SimTime::from_secs(1));
        assert!(a.last().unwrap() < &SimTime::from_secs(5));
    }

    #[test]
    fn spike_windows_enumeration() {
        let p = SpikePattern::periodic(1000.0, 2.0, SimDuration::from_secs(2));
        let w = p.spike_windows(SimTime::ZERO, SimTime::from_secs(35));
        assert_eq!(
            w,
            vec![
                (SimTime::from_secs(10), SimTime::from_secs(12)),
                (SimTime::from_secs(20), SimTime::from_secs(22)),
                (SimTime::from_secs(30), SimTime::from_secs(32)),
            ]
        );
    }

    /// Pin the half-open spike window: at `into_period == spike_len`
    /// exactly, the rate is already back to base.
    #[test]
    fn spike_end_boundary_is_exclusive() {
        let p = SpikePattern::periodic(1000.0, 1.75, SimDuration::from_secs(2));
        // First spike covers [10, 12): 12.0 exactly is base again.
        assert_eq!(p.rate_at(SimTime::from_secs(12)), 1000.0);
        assert_eq!(
            p.rate_at(SimTime::from_secs(12) - SimDuration::from_nanos(1)),
            1750.0
        );
        // Same at every later period boundary.
        assert_eq!(p.rate_at(SimTime::from_secs(22)), 1000.0);
        assert!(!p.in_spike(SimTime::from_secs(12)));
    }

    /// A pattern whose first spike starts at time zero is already spiking
    /// at t = 0 and exits the window half-open like any other.
    #[test]
    fn first_spike_at_zero() {
        let p = SpikePattern {
            first_spike: SimTime::ZERO,
            ..SpikePattern::periodic(1000.0, 2.0, SimDuration::from_secs(2))
        };
        assert_eq!(p.rate_at(SimTime::ZERO), 2000.0);
        assert_eq!(p.rate_at(SimTime::from_secs(2)), 1000.0);
        let a = p.arrivals(SimTime::ZERO, SimTime::from_secs(10));
        // [0,2) spike at 2000 + [2,10) base at 1000.
        assert_eq!(a.len(), 4000 + 8000);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
    }

    /// A zero period must never be divided by (or loop forever): the
    /// pattern degenerates to a flat base rate.
    #[test]
    fn zero_period_never_divides() {
        let p = SpikePattern {
            period: SimDuration::ZERO,
            ..SpikePattern::constant(500.0)
        };
        assert_eq!(p.rate_at(SimTime::ZERO), 500.0);
        assert_eq!(p.rate_at(SimTime::from_secs(100)), 500.0);
        assert!(p
            .spike_windows(SimTime::ZERO, SimTime::from_secs(100))
            .is_empty());
        assert_eq!(p.arrivals(SimTime::ZERO, SimTime::from_secs(2)).len(), 1000);
        // Even with a nominal spike length, a zero period cannot repeat.
        let p = SpikePattern {
            period: SimDuration::ZERO,
            spike_len: SimDuration::from_secs(1),
            ..SpikePattern::constant(500.0)
        };
        assert_eq!(p.rate_at(SimTime::from_secs(50)), 500.0);
        assert!(p
            .spike_windows(SimTime::ZERO, SimTime::from_secs(100))
            .is_empty());
    }

    /// Regression for the pacing-drift bug: a 10-minute constant schedule
    /// at a rate that does not divide 1e9 must realize `rate × duration`
    /// arrivals within 1 (the accumulated-period scheme drifted by >100).
    #[test]
    fn ten_minute_schedule_does_not_drift() {
        let rate = 2997.0;
        let a = SpikePattern::constant(rate).arrivals(SimTime::ZERO, SimTime::from_secs(600));
        let expected = (rate * 600.0).round() as i64;
        assert!(
            (a.len() as i64 - expected).abs() <= 1,
            "realized {} arrivals, expected {expected}",
            a.len()
        );
    }

    /// Segment decomposition pins exact per-segment arrival counts: drift
    /// cannot hide inside spike boundaries.
    #[test]
    fn spiky_schedule_counts_are_exact_per_segment() {
        let p = SpikePattern::periodic(1000.0, 2.0, SimDuration::from_secs(2));
        let a = p.arrivals(SimTime::ZERO, SimTime::from_secs(30));
        // [0,10) + [12,20) + [22,30) at 1000/s, [10,12) + [20,22) at 2000/s.
        assert_eq!(a.len(), 26_000 + 8_000);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn short_surge_is_20x() {
        let p = short_surge(
            2000.0,
            SimDuration::from_micros(100),
            SimDuration::from_millis(50),
        );
        assert_eq!(p.spike_rate, 40_000.0);
        // Inside the first surge window at t = period.
        assert!(p.in_spike(SimTime::from_millis(50)));
        assert!(!p.in_spike(SimTime::from_millis(51)));
    }
}
