//! Spiking open-loop load patterns — the `wrk2_spike` equivalent.
//!
//! The paper modifies wrk2 to inject request-rate spikes with three knobs:
//! `-rate` (steady state), `-spikerate` (rate during the spike) and
//! `-spikelen` (spike duration); spikes repeat periodically (§VI-B:
//! "injecting 2s long request rate surges every 10s"). Arrivals are
//! deterministically paced at the instantaneous rate, wrk2-style, so the
//! measured latencies are free of coordinated omission by construction.

use serde::{Deserialize, Serialize};
use sg_core::time::{SimDuration, SimTime};

/// A periodic request-rate spike pattern.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpikePattern {
    /// Steady-state request rate (req/s) — wrk2's `-rate`.
    pub base_rate: f64,
    /// Request rate during a spike — wrk2's `-spikerate`.
    pub spike_rate: f64,
    /// Spike duration — wrk2's `-spikelen`.
    pub spike_len: SimDuration,
    /// Spike period (start-to-start).
    pub period: SimDuration,
    /// Start of the first spike.
    pub first_spike: SimTime,
}

impl SpikePattern {
    /// A constant-rate pattern (no spikes).
    pub fn constant(rate: f64) -> Self {
        SpikePattern {
            base_rate: rate,
            spike_rate: rate,
            spike_len: SimDuration::ZERO,
            period: SimDuration::from_secs(10),
            first_spike: SimTime::ZERO,
        }
    }

    /// The paper's §VI-B protocol: spikes of `magnitude × base` lasting
    /// `spike_len`, every 10 s, first spike after one full period.
    pub fn periodic(base_rate: f64, magnitude: f64, spike_len: SimDuration) -> Self {
        SpikePattern {
            base_rate,
            spike_rate: base_rate * magnitude,
            spike_len,
            period: SimDuration::from_secs(10),
            first_spike: SimTime::from_secs(10),
        }
    }

    /// Instantaneous rate at `t`.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        if self.spike_len.is_zero() || t < self.first_spike {
            return self.base_rate;
        }
        let since = t.saturating_since(self.first_spike);
        let into_period = SimDuration::from_nanos(since.as_nanos() % self.period.as_nanos().max(1));
        if into_period < self.spike_len {
            self.spike_rate
        } else {
            self.base_rate
        }
    }

    /// True if `t` falls inside a spike window.
    pub fn in_spike(&self, t: SimTime) -> bool {
        self.spike_len > SimDuration::ZERO && self.rate_at(t) == self.spike_rate
    }

    /// Deterministically paced arrival schedule over `[start, end)`.
    pub fn arrivals(&self, start: SimTime, end: SimTime) -> Vec<SimTime> {
        assert!(
            self.base_rate > 0.0 && self.spike_rate > 0.0,
            "rates must be positive"
        );
        let mut out = Vec::new();
        let mut t = start;
        while t < end {
            out.push(t);
            let gap = SimDuration::from_secs_f64(1.0 / self.rate_at(t));
            // Guard against sub-nanosecond gaps from absurd rates.
            t += gap.max(SimDuration::from_nanos(1));
        }
        out
    }

    /// Spike windows intersecting `[start, end)`, for plotting/analysis.
    pub fn spike_windows(&self, start: SimTime, end: SimTime) -> Vec<(SimTime, SimTime)> {
        let mut out = Vec::new();
        if self.spike_len.is_zero() {
            return out;
        }
        let mut s = self.first_spike;
        while s < end {
            let e = s + self.spike_len;
            if e > start {
                out.push((s.max(start), e.min(end)));
            }
            s += self.period;
        }
        out
    }
}

/// Pattern for the FirstResponder short-surge experiments (Fig. 10):
/// instantaneous rate 20× the base for sub-millisecond windows, repeated
/// every `period`.
pub fn short_surge(base_rate: f64, surge_len: SimDuration, period: SimDuration) -> SpikePattern {
    SpikePattern {
        base_rate,
        spike_rate: base_rate * 20.0,
        spike_len: surge_len,
        period,
        first_spike: SimTime::ZERO + period,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_pattern_is_flat() {
        let p = SpikePattern::constant(1000.0);
        assert_eq!(p.rate_at(SimTime::ZERO), 1000.0);
        assert_eq!(p.rate_at(SimTime::from_secs(100)), 1000.0);
        assert!(!p.in_spike(SimTime::from_secs(15)));
        let a = p.arrivals(SimTime::ZERO, SimTime::from_secs(1));
        assert_eq!(a.len(), 1000);
    }

    #[test]
    fn periodic_pattern_alternates() {
        let p = SpikePattern::periodic(1000.0, 1.75, SimDuration::from_secs(2));
        // Before the first spike.
        assert_eq!(p.rate_at(SimTime::from_secs(5)), 1000.0);
        // Inside the first spike [10, 12).
        assert_eq!(p.rate_at(SimTime::from_secs(10)), 1750.0);
        assert_eq!(p.rate_at(SimTime::from_secs(11)), 1750.0);
        assert!(p.in_spike(SimTime::from_secs(11)));
        // After it.
        assert_eq!(p.rate_at(SimTime::from_secs(13)), 1000.0);
        // Second spike [20, 22).
        assert_eq!(p.rate_at(SimTime::from_secs(21)), 1750.0);
    }

    #[test]
    fn arrival_count_reflects_spikes() {
        let base = SpikePattern::constant(1000.0)
            .arrivals(SimTime::ZERO, SimTime::from_secs(30))
            .len();
        let spiky = SpikePattern::periodic(1000.0, 2.0, SimDuration::from_secs(2))
            .arrivals(SimTime::ZERO, SimTime::from_secs(30))
            .len();
        // Two spikes in [0,30): [10,12) and [20,22): each adds ~1000×2s.
        let extra = spiky as i64 - base as i64;
        assert!(
            (extra - 4000).abs() < 100,
            "expected ~4000 extra arrivals, got {extra}"
        );
    }

    #[test]
    fn arrivals_sorted_and_in_range() {
        let p = SpikePattern::periodic(500.0, 1.5, SimDuration::from_millis(100));
        let a = p.arrivals(SimTime::from_secs(1), SimTime::from_secs(5));
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        assert!(a.first().unwrap() >= &SimTime::from_secs(1));
        assert!(a.last().unwrap() < &SimTime::from_secs(5));
    }

    #[test]
    fn spike_windows_enumeration() {
        let p = SpikePattern::periodic(1000.0, 2.0, SimDuration::from_secs(2));
        let w = p.spike_windows(SimTime::ZERO, SimTime::from_secs(35));
        assert_eq!(
            w,
            vec![
                (SimTime::from_secs(10), SimTime::from_secs(12)),
                (SimTime::from_secs(20), SimTime::from_secs(22)),
                (SimTime::from_secs(30), SimTime::from_secs(32)),
            ]
        );
    }

    #[test]
    fn short_surge_is_20x() {
        let p = short_surge(
            2000.0,
            SimDuration::from_micros(100),
            SimDuration::from_millis(50),
        );
        assert_eq!(p.spike_rate, 40_000.0);
        // Inside the first surge window at t = period.
        assert!(p.in_spike(SimTime::from_millis(50)));
        assert!(!p.in_spike(SimTime::from_millis(51)));
    }
}
