//! Same-seed heap-vs-wheel equivalence: the calendar-queue engine must
//! be *indistinguishable* from the binary-heap engine it replaced —
//! byte-identical `RunResult`s and byte-identical telemetry, span, and
//! metrics JSONL streams on every paper-sized scenario class (see
//! SCALING.md §1 for the argument; these tests are its enforcement).
//!
//! Three scenario classes cover the event-pattern space:
//!
//! * a Fig. 5-style steady spike run under the full SurgeGuard stack
//!   (packet hooks, DVFS landings, controller ticks);
//! * a chaos run with deterministic fault injection (fault start/end
//!   events scheduled far ahead — they land in outer wheel levels);
//! * a replica-zoo run with horizontal scaling (replica add/retire and
//!   metrics sweeps under a periodic surge).
//!
//! The profiler stream is deliberately excluded: it reports wall-clock
//! timings and backend-specific occupancy watermarks, so it is the one
//! export *expected* to differ across queue backends.

use sg_controllers::{SmartHpaFactory, SurgeGuardFactory};
use sg_core::time::{SimDuration, SimTime};
use sg_experiments::{chaos, ExpProfile};
use sg_loadgen::SpikePattern;
use sg_sim::cluster::SimConfig;
use sg_sim::controller::ControllerFactory;
use sg_sim::runner::{RunResult, Simulation};
use sg_sim::QueueKind;
use sg_telemetry::{SharedSink, SpanSampler, VecSink};
use sg_workloads::{prepare, CalibrationOptions, PreparedWorkload, Workload};
use std::sync::Arc;

/// One run with every comparable export enabled, returning the result
/// plus the rendered JSONL for the trace, span, and metrics streams.
fn run_with_exports(
    cfg: SimConfig,
    factory: &dyn ControllerFactory,
    arrivals: Arc<[SimTime]>,
) -> (RunResult, [String; 3]) {
    let trace = VecSink::shared();
    let spans = VecSink::shared();
    let metrics = VecSink::shared();
    let result = Simulation::new_shared(cfg, factory, arrivals)
        .with_telemetry(Arc::clone(&trace) as SharedSink)
        .with_spans(Arc::clone(&spans) as SharedSink, SpanSampler::rate(1, 4, 7))
        .with_metrics(Arc::clone(&metrics) as SharedSink)
        .run();
    let jsonl = |sink: &Arc<VecSink>| {
        sink.take()
            .iter()
            .map(|e| e.to_json_line())
            .collect::<Vec<_>>()
            .join("\n")
    };
    let streams = [jsonl(&trace), jsonl(&spans), jsonl(&metrics)];
    (result, streams)
}

/// Assert two results are byte-identical, comparing floats by bit
/// pattern (equality up to rounding is not the bar — *same bits* is).
fn assert_results_identical(a: &RunResult, b: &RunResult) {
    assert_eq!(a.points, b.points, "latency points diverged");
    assert_eq!(a.injected, b.injected);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.dropped, b.dropped);
    assert_eq!(a.events, b.events, "event counts diverged");
    assert_eq!(
        a.avg_cores.to_bits(),
        b.avg_cores.to_bits(),
        "avg_cores bits diverged: {} vs {}",
        a.avg_cores,
        b.avg_cores
    );
    assert_eq!(
        a.energy_j.to_bits(),
        b.energy_j.to_bits(),
        "energy bits diverged: {} vs {}",
        a.energy_j,
        b.energy_j
    );
    assert_eq!(a.profile, b.profile, "per-container profiles diverged");
    assert_eq!(a.peak_in_flight, b.peak_in_flight);
    assert_eq!(a.clamped_actions, b.clamped_actions);
    assert_eq!(a.packet_freq_boosts, b.packet_freq_boosts);
}

/// Run `cfg` once per queue backend (same seed, same arrivals, same
/// controller stack) and require byte-identical results and exports.
fn assert_backends_equivalent(
    cfg: &SimConfig,
    factory: &dyn ControllerFactory,
    arrivals: &Arc<[SimTime]>,
) {
    let mut heap_cfg = cfg.clone();
    heap_cfg.queue = QueueKind::Heap;
    let (heap, heap_streams) = run_with_exports(heap_cfg, factory, Arc::clone(arrivals));
    let mut wheel_cfg = cfg.clone();
    wheel_cfg.queue = QueueKind::Wheel;
    let (wheel, wheel_streams) = run_with_exports(wheel_cfg, factory, Arc::clone(arrivals));

    assert!(heap.completed > 0, "scenario did not exercise the engine");
    assert_results_identical(&heap, &wheel);
    for (name, (h, w)) in ["telemetry", "spans", "metrics"]
        .iter()
        .zip(heap_streams.iter().zip(wheel_streams.iter()))
    {
        assert!(h == w, "{name} JSONL diverged between heap and wheel");
        assert!(
            !h.is_empty(),
            "{name} stream empty — the comparison is vacuous"
        );
    }
}

/// A short but controller-complete scenario window: long enough for
/// warmup, several spike cycles, controller ticks, and retire sweeps.
fn profile() -> ExpProfile {
    ExpProfile {
        trials: 1,
        warmup: SimDuration::from_secs(2),
        measure: SimDuration::from_secs(8),
        base_seed: 4242,
    }
}

fn window_end(p: &ExpProfile) -> SimTime {
    SimTime::ZERO + p.warmup + p.measure
}

fn configure(pw: &PreparedWorkload, p: &ExpProfile) -> SimConfig {
    let mut cfg = pw.cfg.clone();
    cfg.seed = p.base_seed;
    cfg.end = window_end(p) + SimDuration::from_millis(200);
    cfg.measure_start = SimTime::ZERO + p.warmup;
    cfg
}

#[test]
fn fig05_style_run_is_backend_identical() {
    let p = profile();
    let pw = prepare(Workload::Chain, 1, CalibrationOptions::default());
    let cfg = configure(&pw, &p);
    let pattern = SpikePattern::periodic(pw.base_rate, 2.0, SimDuration::from_secs(2));
    let arrivals: Arc<[SimTime]> = pattern.arrivals(SimTime::ZERO, window_end(&p)).into();
    let factory = SurgeGuardFactory::full();
    assert_backends_equivalent(&cfg, &factory, &arrivals);
}

#[test]
fn faulted_chaos_run_is_backend_identical() {
    let p = profile();
    let pw = prepare(Workload::Chain, 1, CalibrationOptions::default());
    let mut cfg = configure(&pw, &p);
    // A container crash mid-window: fault start/end events are scheduled
    // far in the future relative to packet traffic, so they sit in outer
    // wheel levels (or overflow) and must still fire in exact order.
    cfg.faults = chaos::plan_for("crash", &pw, &p);
    let pattern = SpikePattern::constant(pw.base_rate);
    let arrivals: Arc<[SimTime]> = pattern.arrivals(SimTime::ZERO, window_end(&p)).into();
    let factory = SurgeGuardFactory::full();
    assert_backends_equivalent(&cfg, &factory, &arrivals);
}

#[test]
fn replica_zoo_run_is_backend_identical() {
    let p = profile();
    let mut pw = prepare(Workload::Chain, 1, CalibrationOptions::default());
    // The replica-zoo setup: horizontal headroom with a per-container
    // core cap, so the HPA actually scales out under the surge.
    pw.cfg.max_replicas = 3;
    pw.cfg.constraints.max_cores = 12;
    for c in &mut pw.cfg.initial_cores {
        *c = (*c).min(12);
    }
    let cfg = configure(&pw, &p);
    let pattern = SpikePattern::periodic(pw.base_rate, 1.75, SimDuration::from_secs(3));
    let arrivals: Arc<[SimTime]> = pattern.arrivals(SimTime::ZERO, window_end(&p)).into();
    let factory = SmartHpaFactory::default();
    assert_backends_equivalent(&cfg, &factory, &arrivals);
}
