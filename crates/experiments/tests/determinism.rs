//! Parallel-vs-serial determinism: everything a figure emits — rendered
//! tables and `--json` rows — must be byte-identical whatever the
//! worker-thread count, and span telemetry must not be perturbed by
//! parallel trial execution. See DESIGN.md "Parallel experiment runner".

use serde_json::Value;
use sg_core::time::{SimDuration, SimTime};
use sg_experiments::parallel::{par_map, set_threads};
use sg_experiments::{fig05, ExpProfile, JsonSink};
use sg_loadgen::SpikePattern;
use sg_sim::runner::Simulation;
use sg_telemetry::{SharedSink, SpanSampler, VecSink};
use sg_workloads::{prepare, CalibrationOptions, Workload};
use std::sync::{Arc, Mutex, OnceLock};

/// `set_threads` is a process-global override, so tests that flip it must
/// not interleave.
fn thread_override_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Render one full figure run — tables plus serialized JSON rows — at a
/// given worker-thread count.
fn fig05_output(threads: usize) -> String {
    set_threads(threads);
    let profile = ExpProfile::quick();
    let mut sink = JsonSink::new();
    let tables = fig05::run(&profile, &mut sink);
    let rendered: String = tables.iter().map(|t| t.render()).collect();
    let json: Value = sink.into_value();
    rendered + &serde_json::to_string_pretty(&json).unwrap()
}

#[test]
fn fig05_parallel_output_is_byte_identical_to_serial() {
    let _guard = thread_override_lock().lock().unwrap();
    let serial = fig05_output(1);
    let parallel = fig05_output(4);
    assert_eq!(serial, parallel);
}

/// Per-trial span JSONL streams (spans enabled via `with_spans`) at a
/// given worker-thread count, assembled in trial order.
fn span_streams(pw: &sg_workloads::PreparedWorkload, threads: usize) -> Vec<String> {
    set_threads(threads);
    let profile = ExpProfile {
        trials: 4,
        warmup: SimDuration::from_secs(1),
        measure: SimDuration::from_secs(2),
        base_seed: 1000,
    };
    let horizon = SimTime::ZERO + profile.warmup + profile.measure;
    let pattern = SpikePattern::constant(pw.base_rate);
    let arrivals: Arc<[SimTime]> = pattern.arrivals(SimTime::ZERO, horizon).into();
    par_map((0..profile.trials).collect::<Vec<_>>(), |i| {
        let factory = sg_controllers::SurgeGuardFactory::full();
        let sink = VecSink::shared();
        let mut cfg = pw.cfg.clone();
        cfg.seed = profile.trial_seed(i);
        cfg.end = horizon + SimDuration::from_millis(100);
        cfg.measure_start = SimTime::ZERO + profile.warmup;
        let r = Simulation::new_shared(cfg, &factory, Arc::clone(&arrivals))
            .with_spans(Arc::clone(&sink) as SharedSink, SpanSampler::rate(1, 4, 7))
            .run();
        assert!(r.completed > 0);
        sink.take()
            .iter()
            .map(|e| e.to_json_line())
            .collect::<Vec<_>>()
            .join("\n")
    })
}

#[test]
fn span_streams_are_byte_identical_serial_vs_parallel() {
    let _guard = thread_override_lock().lock().unwrap();
    let pw = prepare(Workload::Chain, 1, CalibrationOptions::default());
    let serial = span_streams(&pw, 1);
    let parallel = span_streams(&pw, 4);
    assert!(serial.iter().any(|s| !s.is_empty()), "no spans recorded");
    assert_eq!(serial, parallel);
}
