//! Fig. 13 — node scaling: 1, 2 and 4 nodes with services spread
//! round-robin, 1.75× surges of 2 s every 10 s, SurgeGuard normalized to
//! Parties and CaladanAlgo.
//!
//! Paper expectations: SurgeGuard wins everywhere; its *resource* margin
//! grows with node count (cores −6.5 % → −16.4 %, energy −14.2 % →
//! −28.3 % vs the baselines) because the baselines inefficiently spend
//! the growing spare-core pool, while its *violation-volume* margin
//! shrinks (67.2 % → 51.4 %) because spreading containers lowers the odds
//! that one container hogs a node's cores.

use crate::common::{ratio, run_trials, ExpProfile};
use crate::output::{fr, JsonSink, Table};
use serde_json::json;
use sg_controllers::{CaladanFactory, PartiesFactory, SurgeGuardFactory};
use sg_core::time::SimDuration;
use sg_loadgen::SpikePattern;
use sg_workloads::{prepare, CalibrationOptions, Workload};

/// Node counts evaluated.
pub const NODES: [u32; 3] = [1, 2, 4];

/// Run the experiment. Quick mode averages two representative workloads;
/// full mode uses all five.
pub fn run(profile: &ExpProfile, sink: &mut JsonSink, all_workloads: bool) -> Vec<Table> {
    let parties = PartiesFactory::default();
    let caladan = CaladanFactory::default();
    let surgeguard = SurgeGuardFactory::full();
    let workloads: Vec<Workload> = if all_workloads {
        Workload::all().to_vec()
    } else {
        vec![Workload::ReadUserTimeline, Workload::RecommendHotel]
    };

    let mut t = Table::new(
        "Fig 13 — node scaling at 1.75x (2s/10s), SG normalized to baselines (workload avg)",
        &[
            "nodes",
            "VV sg/parties",
            "VV sg/caladan",
            "cores sg/parties",
            "cores sg/caladan",
            "energy sg/parties",
            "energy sg/caladan",
        ],
    );
    // Calibrate every (node count × workload) scenario in parallel, then
    // fan out the (scenario × controller) trial batches.
    let scenarios: Vec<(u32, Workload)> = NODES
        .iter()
        .flat_map(|&n| workloads.iter().map(move |&wl| (n, wl)))
        .collect();
    let prepared = crate::parallel::par_map(scenarios.clone(), |(nodes, wl)| {
        prepare(wl, nodes, CalibrationOptions::default())
    });
    let jobs: Vec<(usize, usize)> = (0..scenarios.len())
        .flat_map(|s| (0..3).map(move |c| (s, c)))
        .collect();
    let aggs = crate::parallel::par_map(jobs, |(s, c)| {
        let pw = &prepared[s];
        let pattern = SpikePattern::periodic(pw.base_rate, 1.75, SimDuration::from_secs(2));
        let factory: &(dyn sg_sim::controller::ControllerFactory + Sync) = match c {
            0 => &parties,
            1 => &caladan,
            _ => &surgeguard,
        };
        run_trials(pw, factory, &pattern, profile)
    });

    for (ni, &nodes) in NODES.iter().enumerate() {
        let mut sums = [0.0f64; 6];
        let mut counts = [0.0f64; 6];
        for (wi, &wl) in workloads.iter().enumerate() {
            let scenario = ni * workloads.len() + wi;
            let p = &aggs[scenario * 3];
            let c = &aggs[scenario * 3 + 1];
            let s = &aggs[scenario * 3 + 2];
            let rs = [
                ratio(s.violation_volume, p.violation_volume),
                ratio(s.violation_volume, c.violation_volume),
                ratio(s.avg_cores, p.avg_cores),
                ratio(s.avg_cores, c.avg_cores),
                ratio(s.energy_j, p.energy_j),
                ratio(s.energy_j, c.energy_j),
            ];
            for i in 0..6 {
                if rs[i].is_finite() {
                    sums[i] += rs[i];
                    counts[i] += 1.0;
                }
            }
            sink.push(json!({
                "experiment": "fig13",
                "nodes": nodes,
                "workload": wl.label(),
                "vv": {"parties": p.violation_volume, "caladan": c.violation_volume,
                        "surgeguard": s.violation_volume},
                "cores": {"parties": p.avg_cores, "caladan": c.avg_cores,
                           "surgeguard": s.avg_cores},
                "energy": {"parties": p.energy_j, "caladan": c.energy_j,
                            "surgeguard": s.energy_j},
            }));
        }
        let avg = |i: usize| {
            if counts[i] > 0.0 {
                sums[i] / counts[i]
            } else {
                f64::INFINITY
            }
        };
        t.row(vec![
            nodes.to_string(),
            fr(avg(0)),
            fr(avg(1)),
            fr(avg(2)),
            fr(avg(3)),
            fr(avg(4)),
            fr(avg(5)),
        ]);
    }
    vec![t]
}
