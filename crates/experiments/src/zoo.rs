//! Zoo — the horizontal-autoscaler comparison the paper leaves open:
//! when does fast vertical scaling beat (or compose with) capacity-adding
//! horizontal scaling?
//!
//! The spike protocol runs unchanged across five controllers —
//! Parties and SurgeGuard (vertical-only), LSRAM (gradient-descent SLO
//! allocation, arXiv:2411.11493), Smart HPA (resource-efficient pod
//! autoscaling, arXiv:2403.07909), and SurgeGuard-H (SurgeGuard plus a
//! slow replica tier) — on a node whose per-container core cap is far
//! below its total budget, so vertical controllers saturate per
//! container while horizontal ones can spend the spare budget on
//! replicas. Every arm sees the same cap, the same replica ceiling, and
//! paired seeds.
//!
//! Reported per arm: trimmed-mean violation volume, P98, energy, and
//! average cores across the trial batch, plus the replica-count
//! timeline of a metrics-enabled run reconstructed with
//! [`sg_telemetry::timeline::TimelineSet`] and the end-of-run replica
//! counts scraped from a [`MetricsRegistry`] fed by the same stream.

use crate::common::{ratio, run_trials, ExpProfile};
use crate::output::{fr, JsonSink, Table};
use serde_json::json;
use sg_controllers::{
    LsramFactory, PartiesFactory, SmartHpaFactory, SurgeGuardFactory, SurgeGuardHFactory,
};
use sg_core::ids::{ContainerId, NodeId};
use sg_core::time::{SimDuration, SimTime};
use sg_loadgen::SpikePattern;
use sg_sim::controller::ControllerFactory;
use sg_sim::runner::Simulation;
use sg_telemetry::timeline::TimelineSet;
use sg_telemetry::{MetricId, MetricsRegistry, SharedSink, TelemetrySink, VecSink};
use sg_workloads::{prepare, CalibrationOptions, PreparedWorkload, Workload};
use std::sync::Arc;

/// Replica ceiling per service group.
pub const MAX_REPLICAS: u32 = 3;

/// Per-container core cap. This is the knob that makes the comparison
/// interesting: well below the node budget, so a vertical controller
/// saturates per container while a horizontal one keeps going.
pub const MAX_CORES: u32 = 12;

/// The evaluated line-up; Parties first — the zoo normalizes to it.
pub const ARMS: [&str; 5] = ["parties", "surgeguard", "lsram", "smart-hpa", "sg-h"];

fn factory_for(name: &str) -> Box<dyn ControllerFactory + Sync> {
    match name {
        "parties" => Box::new(PartiesFactory::default()),
        "surgeguard" => Box::new(SurgeGuardFactory::full()),
        "lsram" => Box::new(LsramFactory::default()),
        "smart-hpa" => Box::new(SmartHpaFactory::default()),
        "sg-h" => Box::new(SurgeGuardHFactory::default()),
        other => panic!("unknown zoo arm '{other}'"),
    }
}

/// The shared scenario: CHAIN with horizontal scaling enabled and the
/// per-container cap applied (identically for every arm).
fn workload() -> PreparedWorkload {
    let mut pw = prepare(Workload::Chain, 1, CalibrationOptions::default());
    pw.cfg.max_replicas = MAX_REPLICAS;
    pw.cfg.constraints.max_cores = MAX_CORES;
    for c in &mut pw.cfg.initial_cores {
        *c = (*c).min(MAX_CORES);
    }
    pw
}

/// Run the experiment.
pub fn run(profile: &ExpProfile, sink: &mut JsonSink) -> Vec<Table> {
    let pw = workload();
    let n_services = pw.cfg.graph.len();
    // The standard periodic spike protocol (Fig. 12) at its longest
    // surge duration: 5 s at 1.75x every 10 s — long enough that
    // capacity, not just reaction time, decides the outcome.
    let pattern = SpikePattern::periodic(pw.base_rate, 1.75, SimDuration::from_secs(5));
    let w_end = SimTime::ZERO + profile.warmup + profile.measure;

    struct ArmResult {
        agg: sg_loadgen::AggregateReport,
        /// Total active replicas sampled every 2 s across the window.
        timeline: Vec<f64>,
        peak_replicas: f64,
        /// End-of-run replica count per service, from the registry.
        final_replicas: Vec<f64>,
    }

    let sample_times: Vec<SimTime> = (0..=(w_end.as_secs_f64() / 2.0) as u64)
        .map(|i| SimTime::ZERO + SimDuration::from_secs(2 * i))
        .collect();

    // Each arm: a full paired-seed trial batch for the aggregate
    // numbers, plus one metrics-enabled run for the replica timeline.
    let results = crate::parallel::par_map(ARMS.to_vec(), |name| {
        let factory = factory_for(name);
        let agg = run_trials(&pw, factory.as_ref(), &pattern, profile);

        let mut cfg = pw.cfg.clone();
        cfg.end = w_end + SimDuration::from_millis(200);
        cfg.measure_start = SimTime::ZERO + profile.warmup;
        cfg.seed = profile.base_seed;
        let metrics = VecSink::shared();
        let arrivals = pattern.arrivals(SimTime::ZERO, w_end);
        let result = Simulation::new(cfg, factory.as_ref(), arrivals)
            .with_metrics(Arc::clone(&metrics) as SharedSink)
            .run();
        assert!(result.completed > 0);
        let events = metrics.take();

        // The PR-5 pipeline both ways: the full gauge history through
        // TimelineSet, the current values through a MetricsRegistry —
        // the same stream a live `--scrape` endpoint would serve.
        let set = TimelineSet::from_events(events.iter());
        let registry = MetricsRegistry::new();
        for e in &events {
            registry.emit(e.clone());
        }
        let timeline: Vec<f64> = sample_times
            .iter()
            .map(|&at| {
                (0..n_services)
                    .map(|s| {
                        set.value_at(s as u32, MetricId::Replicas, at)
                            .unwrap_or(1.0)
                    })
                    .sum()
            })
            .collect();
        let peak_replicas = timeline.iter().copied().fold(f64::MIN, f64::max);
        let final_replicas: Vec<f64> = (0..n_services)
            .map(|s| {
                registry
                    .get(NodeId(0), ContainerId(s as u32), MetricId::Replicas)
                    .unwrap_or(1.0)
            })
            .collect();
        ArmResult {
            agg,
            timeline,
            peak_replicas,
            final_replicas,
        }
    });

    let base_vv = results[0].agg.violation_volume;
    let base_energy = results[0].agg.energy_j;

    let mut t = Table::new(
        &format!(
            "Zoo — autoscalers on the spike protocol (5s surges at 1.75x, {MAX_CORES}-core \
             container cap, up to {MAX_REPLICAS} replicas)"
        ),
        &[
            "controller",
            "VV (s^2)",
            "VV vs parties",
            "P98 (ms)",
            "energy (J)",
            "energy vs parties",
            "avg cores",
            "peak replicas",
        ],
    );
    for (name, r) in ARMS.iter().zip(&results) {
        t.row(vec![
            name.to_string(),
            format!("{:.3e}", r.agg.violation_volume),
            fr(ratio(r.agg.violation_volume, base_vv)),
            format!("{:.2}", r.agg.p98_s * 1e3),
            format!("{:.1}", r.agg.energy_j),
            fr(ratio(r.agg.energy_j, base_energy)),
            format!("{:.1}", r.agg.avg_cores),
            format!("{:.0}", r.peak_replicas),
        ]);
        sink.push(json!({
            "experiment": "zoo",
            "controller": *name,
            "vv": r.agg.violation_volume,
            "vv_vs_parties": ratio(r.agg.violation_volume, base_vv),
            "p98_s": r.agg.p98_s,
            "energy_j": r.agg.energy_j,
            "energy_vs_parties": ratio(r.agg.energy_j, base_energy),
            "avg_cores": r.agg.avg_cores,
            "peak_replicas": r.peak_replicas,
            "final_replicas": r.final_replicas.clone(),
            "replica_timeline_t_s": sample_times.iter().map(|t| t.as_secs_f64()).collect::<Vec<_>>(),
            "replica_timeline": r.timeline.clone(),
        }));
    }

    let mut header: Vec<&str> = vec!["t (s)"];
    header.extend(ARMS.iter());
    let mut tt = Table::new(
        &format!("Zoo — total active replicas over time ({n_services} services, 1 each at start)"),
        &header,
    );
    for (i, &at) in sample_times.iter().enumerate() {
        tt.row(
            std::iter::once(format!("{:.0}", at.as_secs_f64()))
                .chain(results.iter().map(|r| format!("{:.0}", r.timeline[i])))
                .collect(),
        );
    }

    vec![t, tt]
}
