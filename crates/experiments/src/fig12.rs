//! Fig. 12 — effect of surge duration (0.1 s – 5 s at 1.75×) on
//! `recommendHotel` (connection-per-request) and `readUserTimeline`
//! (fixed threadpool), SurgeGuard normalized to Parties and CaladanAlgo.
//!
//! Paper expectations: SurgeGuard wins at every duration and its margin
//! grows with duration (43.4 % → 56.5 % over the baselines from 0.1 s to
//! 5 s); against CaladanAlgo on `recommendHotel` the violation-volume gap
//! becomes enormous (~251× at 5 s) while CaladanAlgo burns much less
//! energy (it simply never upscales).

use crate::common::{ratio, run_trials, ExpProfile};
use crate::output::{fr, JsonSink, Table};
use serde_json::json;
use sg_controllers::{CaladanFactory, PartiesFactory, SurgeGuardFactory};
use sg_core::time::SimDuration;
use sg_loadgen::SpikePattern;
use sg_workloads::{prepare, CalibrationOptions, Workload};

/// Surge durations in milliseconds.
pub const DURATIONS_MS: [u64; 5] = [100, 500, 1000, 2000, 5000];

/// Run the experiment.
pub fn run(profile: &ExpProfile, sink: &mut JsonSink) -> Vec<Table> {
    let parties = PartiesFactory::default();
    let caladan = CaladanFactory::default();
    let surgeguard = SurgeGuardFactory::full();
    let workloads = [Workload::RecommendHotel, Workload::ReadUserTimeline];

    // Calibrate both workloads in parallel, then fan out every
    // (workload × duration × controller) trial batch.
    let prepared = crate::parallel::par_map(workloads.to_vec(), |wl| {
        prepare(wl, 1, CalibrationOptions::default())
    });
    let jobs: Vec<(usize, usize, usize)> = (0..workloads.len())
        .flat_map(|w| (0..DURATIONS_MS.len()).flat_map(move |d| (0..3).map(move |c| (w, d, c))))
        .collect();
    let aggs = crate::parallel::par_map(jobs, |(w, d, c)| {
        let pw = &prepared[w];
        let pattern = SpikePattern::periodic(
            pw.base_rate,
            1.75,
            SimDuration::from_millis(DURATIONS_MS[d]),
        );
        let factory: &(dyn sg_sim::controller::ControllerFactory + Sync) = match c {
            0 => &parties,
            1 => &caladan,
            _ => &surgeguard,
        };
        run_trials(pw, factory, &pattern, profile)
    });
    let agg_of = |w: usize, d: usize, c: usize| &aggs[(w * DURATIONS_MS.len() + d) * 3 + c];

    let mut tables = Vec::new();
    for (wi, &wl) in workloads.iter().enumerate() {
        let pw = &prepared[wi];
        let mut t = Table::new(
            &format!(
                "Fig 12 — surge duration sweep at 1.75x, {} (SG normalized to baselines)",
                pw.cfg.graph.name
            ),
            &[
                "duration",
                "VV sg/parties",
                "VV sg/caladan",
                "cores sg/parties",
                "energy sg/parties",
                "energy sg/caladan",
            ],
        );
        for (di, &ms) in DURATIONS_MS.iter().enumerate() {
            let p = agg_of(wi, di, 0);
            let c = agg_of(wi, di, 1);
            let s = agg_of(wi, di, 2);
            t.row(vec![
                format!("{:.1}s", ms as f64 / 1000.0),
                fr(ratio(s.violation_volume, p.violation_volume)),
                fr(ratio(s.violation_volume, c.violation_volume)),
                fr(ratio(s.avg_cores, p.avg_cores)),
                fr(ratio(s.energy_j, p.energy_j)),
                fr(ratio(s.energy_j, c.energy_j)),
            ]);
            sink.push(json!({
                "experiment": "fig12",
                "workload": wl.label(),
                "duration_ms": ms,
                "vv": {"parties": p.violation_volume, "caladan": c.violation_volume,
                        "surgeguard": s.violation_volume},
                "cores": {"parties": p.avg_cores, "caladan": c.avg_cores,
                           "surgeguard": s.avg_cores},
                "energy": {"parties": p.energy_j, "caladan": c.energy_j,
                            "surgeguard": s.energy_j},
            }));
        }
        tables.push(t);
    }
    tables
}
