//! Fig. 12 — effect of surge duration (0.1 s – 5 s at 1.75×) on
//! `recommendHotel` (connection-per-request) and `readUserTimeline`
//! (fixed threadpool), SurgeGuard normalized to Parties and CaladanAlgo.
//!
//! Paper expectations: SurgeGuard wins at every duration and its margin
//! grows with duration (43.4 % → 56.5 % over the baselines from 0.1 s to
//! 5 s); against CaladanAlgo on `recommendHotel` the violation-volume gap
//! becomes enormous (~251× at 5 s) while CaladanAlgo burns much less
//! energy (it simply never upscales).

use crate::common::{ratio, run_trials, ExpProfile};
use crate::output::{fr, JsonSink, Table};
use serde_json::json;
use sg_controllers::{CaladanFactory, PartiesFactory, SurgeGuardFactory};
use sg_core::time::SimDuration;
use sg_loadgen::SpikePattern;
use sg_workloads::{prepare, CalibrationOptions, Workload};

/// Surge durations in milliseconds.
pub const DURATIONS_MS: [u64; 5] = [100, 500, 1000, 2000, 5000];

/// Run the experiment.
pub fn run(profile: &ExpProfile, sink: &mut JsonSink) -> Vec<Table> {
    let parties = PartiesFactory::default();
    let caladan = CaladanFactory::default();
    let surgeguard = SurgeGuardFactory::full();

    let mut tables = Vec::new();
    for wl in [Workload::RecommendHotel, Workload::ReadUserTimeline] {
        let pw = prepare(wl, 1, CalibrationOptions::default());
        let mut t = Table::new(
            &format!(
                "Fig 12 — surge duration sweep at 1.75x, {} (SG normalized to baselines)",
                pw.cfg.graph.name
            ),
            &[
                "duration",
                "VV sg/parties",
                "VV sg/caladan",
                "cores sg/parties",
                "energy sg/parties",
                "energy sg/caladan",
            ],
        );
        for &ms in &DURATIONS_MS {
            let pattern = SpikePattern::periodic(pw.base_rate, 1.75, SimDuration::from_millis(ms));
            let p = run_trials(&pw, &parties, &pattern, profile);
            let c = run_trials(&pw, &caladan, &pattern, profile);
            let s = run_trials(&pw, &surgeguard, &pattern, profile);
            t.row(vec![
                format!("{:.1}s", ms as f64 / 1000.0),
                fr(ratio(s.violation_volume, p.violation_volume)),
                fr(ratio(s.violation_volume, c.violation_volume)),
                fr(ratio(s.avg_cores, p.avg_cores)),
                fr(ratio(s.energy_j, p.energy_j)),
                fr(ratio(s.energy_j, c.energy_j)),
            ]);
            sink.push(json!({
                "experiment": "fig12",
                "workload": wl.label(),
                "duration_ms": ms,
                "vv": {"parties": p.violation_volume, "caladan": c.violation_volume,
                        "surgeguard": s.violation_volume},
                "cores": {"parties": p.avg_cores, "caladan": c.avg_cores,
                           "surgeguard": s.avg_cores},
                "energy": {"parties": p.energy_j, "caladan": c.energy_j,
                            "surgeguard": s.energy_j},
            }));
        }
        tables.push(t);
    }
    tables
}
