//! Fig. 10 — short surges on CHAIN: FirstResponder vs Escalator alone.
//!
//! The paper injects 20× instantaneous-rate surges of 100 µs and 2 ms and
//! finds FirstResponder cuts the violation volume by 98 % / 88 % over
//! Escalator alone, with the relative benefit shrinking as the surge
//! lengthens (Escalator eventually sees longer surges in its averaged
//! windows). Surge lengths here are scaled to this testbed's lower base
//! rates (see DESIGN.md): the regime boundaries — "invisible to window
//! averages" vs "long enough for the slow path" — are what is reproduced.

use crate::common::{ratio, run_trials, ExpProfile};
use crate::output::{pct_change, JsonSink, Table};
use serde_json::json;
use sg_controllers::SurgeGuardFactory;
use sg_core::time::SimDuration;
use sg_loadgen::short_surge;
use sg_workloads::{prepare, CalibrationOptions, Workload};

/// Surge lengths (µs) evaluated; 20× instantaneous rate, every 100 ms.
pub const SURGE_US: [u64; 4] = [500, 1000, 2000, 5000];

/// Run the experiment.
pub fn run(profile: &ExpProfile, sink: &mut JsonSink) -> Vec<Table> {
    let pw = prepare(Workload::Chain, 1, CalibrationOptions::default());
    let full = SurgeGuardFactory::full();
    let esc = SurgeGuardFactory::escalator_only();

    // Short-surge profile: lots of surges, shorter window is enough.
    let mut prof = *profile;
    prof.measure = SimDuration::from_secs(10).min(profile.measure);

    let mut t = Table::new(
        "Fig 10 — short 20x surges on CHAIN: FirstResponder benefit",
        &[
            "surge len",
            "VV escalator-only (s^2)",
            "VV full SG (s^2)",
            "VV change",
        ],
    );
    // 4 surge lengths × 2 controller arms, each a full trial batch.
    let jobs: Vec<(u64, bool)> = SURGE_US
        .iter()
        .flat_map(|&us| [(us, false), (us, true)])
        .collect();
    let aggs = crate::parallel::par_map(jobs, |(us, full_sg)| {
        // Keep the surge duty cycle ≤ 1% so the *average* rate stays near
        // the base rate and only the instantaneous burst matters (as in
        // the paper's timelines, where surges are isolated events).
        let period = SimDuration::from_micros((us * 100).max(100_000));
        let pattern = short_surge(pw.base_rate, SimDuration::from_micros(us), period);
        let factory = if full_sg { &full } else { &esc };
        run_trials(&pw, factory, &pattern, &prof)
    });

    let mut reductions = Vec::new();
    for (i, &us) in SURGE_US.iter().enumerate() {
        let (r_esc, r_full) = (&aggs[2 * i], &aggs[2 * i + 1]);
        let rel = ratio(r_full.violation_volume, r_esc.violation_volume);
        reductions.push(rel);
        t.row(vec![
            format!("{}us", us),
            format!("{:.3e}", r_esc.violation_volume),
            format!("{:.3e}", r_full.violation_volume),
            pct_change(rel),
        ]);
        sink.push(json!({
            "experiment": "fig10",
            "surge_us": us,
            "vv_escalator": r_esc.violation_volume,
            "vv_full": r_full.violation_volume,
            "vv_ratio": rel,
        }));
    }
    vec![t]
}
