//! Minimal scoped-thread fork-join pool for the experiment harness.
//!
//! The paper protocol is embarrassingly parallel twice over: every trial
//! is an independent `(config, seed)` pure function, and every figure arm
//! (controller × workload × sweep point) is independent of its siblings.
//! This module fans both levels out over `std::thread::scope` workers with
//! three properties the harness relies on:
//!
//! 1. **Deterministic assembly.** Results are written into a slot indexed
//!    by the job's position in the input, so the output `Vec` is in input
//!    order no matter how the OS schedules workers. Combined with
//!    per-trial seeds derived from the root seed (`base_seed + i`), the
//!    parallel harness is byte-identical to the serial one
//!    (`--serial` / `SG_EXP_THREADS=1`), which the determinism tests in
//!    `tests/determinism.rs` assert.
//! 2. **No nested fan-out.** Figure modules parallelize arms, and each arm
//!    calls [`crate::run_trials`] which parallelizes trials. A
//!    thread-local flag makes any `par_map` issued from inside a worker
//!    run inline, so the worker count stays bounded by [`threads`] instead
//!    of multiplying per level.
//! 3. **Per-worker scratch.** [`par_map_with`] gives every worker one
//!    scratch value for its whole batch, which is how trial loops reuse
//!    event-heap / invocation-slab / histogram allocations across trials
//!    (see `sg_sim::SimBuffers`).
//!
//! The worker count comes from, in priority order: [`set_threads`], the
//! `SG_EXP_THREADS` environment variable, then
//! `std::thread::available_parallelism()`.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Process-wide override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Override the worker count for all subsequent `par_map` calls
/// (`1` forces fully serial, in-place execution). Takes precedence over
/// `SG_EXP_THREADS` and the detected core count.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n.max(1), Ordering::Relaxed);
}

fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Ok(v) = std::env::var("SG_EXP_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Worker count the next top-level `par_map` will use.
pub fn threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => default_threads(),
        n => n,
    }
}

/// True when called from inside a `par_map` worker (nested calls run
/// inline).
pub fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Map `f` over `items` on up to [`threads`] scoped workers, returning
/// results in input order. Falls back to a plain serial loop when one
/// thread suffices or when already inside a worker.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_map_with(items, || (), |(), item| f(item))
}

/// [`par_map`] with per-worker scratch state: each worker calls `init`
/// once and threads the value through every job it claims. The serial
/// fallback uses a single scratch for the whole batch — identical to what
/// one worker would see — so scratch reuse can never make parallel output
/// diverge from serial output.
pub fn par_map_with<S, T, R, Init, F>(items: Vec<T>, init: Init, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    Init: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let workers = threads().min(items.len());
    if workers <= 1 || in_worker() {
        let mut scratch = init();
        return items.into_iter().map(|t| f(&mut scratch, t)).collect();
    }

    // Job slots (taken exactly once via the shared cursor) and result
    // slots (written exactly once, read back in input order). The crate
    // forbids unsafe code, so slot access goes through uncontended
    // mutexes rather than raw cells; one lock per *job* is noise next to
    // a multi-second trial.
    let jobs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                IN_WORKER.with(|w| w.set(true));
                let mut scratch = init();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    let item = jobs[i]
                        .lock()
                        .expect("job slot poisoned")
                        .take()
                        .expect("job claimed twice");
                    let r = f(&mut scratch, item);
                    *results[i].lock().expect("result slot poisoned") = Some(r);
                }
                IN_WORKER.with(|w| w.set(false));
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker finished every claimed job")
        })
        .collect()
}

/// Run a batch of heterogeneous jobs (boxed closures) in parallel,
/// returning their results in input order. This is how figure modules fan
/// out arms that each do different work (different controller, workload,
/// sweep point) but produce the same row type.
pub fn par_run<'scope, R: Send>(jobs: Vec<Box<dyn FnOnce() -> R + Send + 'scope>>) -> Vec<R> {
    par_map(jobs, |job| job())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let out = par_map((0..100).collect::<Vec<usize>>(), |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn nested_par_map_runs_inline() {
        let out = par_map(vec![0usize, 1, 2, 3], |i| {
            assert!(in_worker() || threads() == 1);
            // Nested call must not spawn another layer of workers.
            let inner = par_map((0..10).collect::<Vec<usize>>(), |j| j + i);
            inner.iter().sum::<usize>()
        });
        assert_eq!(out, vec![45, 55, 65, 75]);
    }

    #[test]
    fn scratch_is_reused_within_a_worker() {
        // Count init() calls: must be ≤ worker count, not per-item.
        let inits = AtomicUsize::new(0);
        let out = par_map_with(
            (0..64).collect::<Vec<usize>>(),
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<usize>::new()
            },
            |scratch, i| {
                scratch.push(i);
                i
            },
        );
        assert_eq!(out.len(), 64);
        assert!(inits.load(Ordering::Relaxed) <= threads().max(1));
    }

    #[test]
    fn par_run_handles_heterogeneous_jobs() {
        let a = 7usize;
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = vec![
            Box::new(move || a * 2),
            Box::new(|| 1),
            Box::new(|| (0..5).sum()),
        ];
        assert_eq!(par_run(jobs), vec![14, 1, 10]);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<usize> = par_map(Vec::<usize>::new(), |i| i);
        assert!(out.is_empty());
    }
}
