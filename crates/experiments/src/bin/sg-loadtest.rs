//! `sg-loadtest` — the `wrk2_spike` equivalent (paper artifact A₂).
//!
//! Drives one calibrated workload under a spiking open-loop load and
//! prints what the paper's modified wrk2 prints: a latency histogram and
//! the violation volume.
//!
//! ```text
//! sg-loadtest [--workload NAME] [--controller NAME] [--backend NAME]
//!             [--nodes N] [--max-replicas N] [--rate R] [--spikerate R]
//!             [--spikelen SECS] [--profile SPEC] [--faults PATH]
//!             [--duration SECS] [--qos MS] [--seed N]
//!             [--telemetry PATH] [--spans PATH] [--span-sample N/M]
//!             [--metrics PATH] [--metrics-interval MS]
//!             [--metrics-listen ADDR] [--slo-objective PCT]
//!             [--profile-out PATH]
//!
//!   --workload    chain | read | compose | search | reco   (default chain)
//!   --controller  static | parties | caladan | surgeguard | escalator
//!                 | ml | hybrid | lsram | smart-hpa | sg-h
//!                                                          (default surgeguard)
//!                 lsram, smart-hpa and sg-h are the horizontal autoscaler
//!                 zoo: they drive `SetReplicas` and need a replica ceiling
//!                 above 1 (the default when one of them is selected is 3)
//!   --max-replicas
//!                 replica ceiling per service group (default 1, i.e.
//!                 horizontal scaling disabled; 3 for the zoo controllers)
//!   --backend     sim | live                               (default sim)
//!                 `live` replays the same schedule in real time on the
//!                 wall-clock backend (`sg-live`): the run blocks for
//!                 warmup + duration seconds of actual time.
//!   --rate        steady request rate; default: the calibrated base rate
//!   --spikerate   rate during spikes; default: 1.75 × rate
//!   --spikelen    spike duration in seconds (default 2; 0 disables spikes)
//!   --profile     arrival shape: spike | diurnal | mmpp | trace:PATH
//!                 (default spike). diurnal swings 0.6–1.6x the base rate
//!                 over a 60 s cycle; mmpp is a 2-state Markov-modulated
//!                 Poisson process with mean exactly the base rate;
//!                 trace:PATH replays a Google-cluster-style CSV
//!                 (`timestamp_s,rate` rows, see traces/) rescaled so its
//!                 mean rate equals the base rate. All shapes are
//!                 deterministic in --seed.
//!   --faults      deterministic fault plan (JSON or TOML, see DESIGN.md
//!                 §8): container crashes, node loss, pool leaks, network
//!                 jitter, stragglers — injected identically on either
//!                 backend
//!   --duration    measurement seconds after warmup (default 30 sim, 5 live)
//!   --qos         QoS limit in ms; default: calibrated limit
//!   --telemetry   write the decision trace (why every scaling action
//!                 happened) as JSONL to PATH; summarize with `sg-trace`
//!   --spans       write per-request span trees (per-hop pool wait,
//!                 service, downstream and network time) as JSONL to
//!                 PATH; analyze with `sg-trace` (critical-path report)
//!   --span-sample trace N out of every M requests, deterministically
//!                 seeded by --seed (default 1/1 = every request)
//!   --metrics     write the internal-state gauge/counter timeline
//!                 (cores, DVFS level, FR boosts, queue buildup, pool
//!                 occupancy, slack quantiles, sensitivity arms) as JSONL
//!                 to PATH; render with `sg-timeline`. Also turns on the
//!                 mergeable aggregation layer: per-node latency digests,
//!                 SLO burn windows and heavy-hitter sketches ride the
//!                 same stream as cumulative snapshots — tail them with
//!                 `sg-trace watch PATH`
//!   --metrics-interval
//!                 live sampler cadence in ms (default 100). The sim
//!                 backend ignores it: it records synchronously at every
//!                 decision cycle.
//!   --metrics-listen
//!                 live only: serve the current metric values as
//!                 Prometheus text exposition on ADDR (e.g.
//!                 127.0.0.1:9184) for the duration of the run; with the
//!                 aggregation layer on, the `sg_slo_*` burn-rate series
//!                 are served too
//!   --slo-objective
//!                 SLO objective percentage for the burn-rate windows
//!                 (default 99.9, i.e. 0.1% error budget against the QoS
//!                 deadline)
//!   --profile-out turn on the runtime self-profiler and write its
//!                 report (phase totals, p50/p99, watermarks, self-
//!                 overhead) as JSONL to PATH; render with
//!                 `sg-trace --profile PATH`. Works on both backends;
//!                 when off, every instrumented site costs one branch.
//!
//! Warmup is 5 s with the first spike at 10 s on the simulator; the live
//! backend shortens both (1 s warmup, first spike at 2 s) so short real
//! runs still exercise a surge.
//! ```

use sg_controllers::{
    CaladanFactory, CentralizedFactory, HybridFactory, LsramFactory, PartiesFactory,
    SmartHpaFactory, SurgeGuardFactory, SurgeGuardHFactory,
};
use sg_core::fault::FaultPlan;
use sg_core::time::{SimDuration, SimTime};
use sg_loadgen::{ArrivalProfile, LatencyHistogram, RunReport, SpikePattern};
use sg_sim::controller::{ControllerFactory, NoopFactory};
use sg_sim::runner::Simulation;
use sg_telemetry::{
    topk_unpack, AggConfig, AggRuntime, JsonlSink, SharedSink, SloConfig, SpanSampler,
    TelemetryEvent, PROFILE_SCHEMA, SPANS_SCHEMA, TRACE_SCHEMA,
};
use sg_workloads::{prepare, CalibrationOptions, Workload};
use std::sync::Arc;

fn arg(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Open a JSONL export file, stamping the schema header as line 1 —
/// written here, before any relay ring, so it can never be dropped.
/// (The metrics stream passes `None`: its header is the richer
/// `MetricsMeta` record, emitted by the harness itself.)
fn file_sink(path: &str, what: &str, schema: Option<&str>) -> SharedSink {
    let sink = JsonlSink::create(std::path::Path::new(path)).unwrap_or_else(|e| {
        eprintln!("cannot create {what} file '{path}': {e}");
        std::process::exit(2);
    });
    let sink = Arc::new(sink) as SharedSink;
    if let Some(schema) = schema {
        sink.emit(TelemetryEvent::Schema {
            schema: schema.into(),
        });
    }
    sink
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workload = match arg(&args, "--workload").as_deref().unwrap_or("chain") {
        "chain" => Workload::Chain,
        "read" => Workload::ReadUserTimeline,
        "compose" => Workload::ComposePost,
        "search" => Workload::SearchHotel,
        "reco" => Workload::RecommendHotel,
        other => {
            eprintln!("unknown workload '{other}'");
            std::process::exit(2);
        }
    };
    let live = match arg(&args, "--backend").as_deref().unwrap_or("sim") {
        "sim" => false,
        "live" => true,
        other => {
            eprintln!("unknown backend '{other}'");
            std::process::exit(2);
        }
    };
    let nodes: u32 = arg(&args, "--nodes").map_or(1, |v| v.parse().expect("--nodes"));
    let seed: u64 = arg(&args, "--seed").map_or(42, |v| v.parse().expect("--seed"));
    let default_duration = if live { 5 } else { 30 };
    let duration: u64 =
        arg(&args, "--duration").map_or(default_duration, |v| v.parse().expect("--duration"));

    eprintln!("calibrating {workload:?} on {nodes} node(s) ...");
    let pw = prepare(workload, nodes, CalibrationOptions::default());

    let rate: f64 = arg(&args, "--rate").map_or(pw.base_rate, |v| v.parse().expect("--rate"));
    let spike_rate: f64 =
        arg(&args, "--spikerate").map_or(rate * 1.75, |v| v.parse().expect("--spikerate"));
    let spike_len_s: f64 = arg(&args, "--spikelen").map_or(2.0, |v| v.parse().expect("--spikelen"));
    let qos = arg(&args, "--qos").map_or(pw.qos, |v| {
        SimDuration::from_secs_f64(v.parse::<f64>().expect("--qos") / 1e3)
    });

    let controller_name = arg(&args, "--controller").unwrap_or_else(|| "surgeguard".into());
    let horizontal = matches!(controller_name.as_str(), "lsram" | "smart-hpa" | "sg-h");
    let factory: Box<dyn ControllerFactory> = match controller_name.as_str() {
        "static" => Box::new(NoopFactory),
        "parties" => Box::new(PartiesFactory::default()),
        "caladan" => Box::new(CaladanFactory::default()),
        "surgeguard" => Box::new(SurgeGuardFactory::full()),
        "escalator" => Box::new(SurgeGuardFactory::escalator_only()),
        "ml" => Box::new(CentralizedFactory::default()),
        "hybrid" => Box::new(HybridFactory::default()),
        "lsram" => Box::new(LsramFactory::default()),
        "smart-hpa" => Box::new(SmartHpaFactory::default()),
        "sg-h" => Box::new(SurgeGuardHFactory::default()),
        other => {
            eprintln!("unknown controller '{other}'");
            std::process::exit(2);
        }
    };
    let default_replicas = if horizontal { 3 } else { 1 };
    let max_replicas: u32 = arg(&args, "--max-replicas")
        .map_or(default_replicas, |v| v.parse().expect("--max-replicas"));

    let first_spike = if live {
        SimTime::from_secs(2)
    } else {
        SimTime::from_secs(10)
    };
    let pattern = if spike_len_s > 0.0 && spike_rate > rate {
        SpikePattern {
            base_rate: rate,
            spike_rate,
            spike_len: SimDuration::from_secs_f64(spike_len_s),
            period: SimDuration::from_secs(10),
            first_spike,
        }
    } else {
        SpikePattern::constant(rate)
    };

    let profile_spec = arg(&args, "--profile").unwrap_or_else(|| "spike".into());
    let profile = ArrivalProfile::parse(&profile_spec, pattern, seed).unwrap_or_else(|e| {
        eprintln!("bad --profile: {e}");
        std::process::exit(2);
    });

    let warmup = if live {
        SimTime::from_secs(1)
    } else {
        SimTime::from_secs(5)
    };
    let end = warmup + SimDuration::from_secs(duration);
    let mut cfg = pw.cfg.clone();
    cfg.end = end + SimDuration::from_millis(200);
    cfg.measure_start = warmup;
    cfg.seed = seed;
    cfg.max_replicas = max_replicas;
    if let Some(path) = arg(&args, "--faults") {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read fault plan '{path}': {e}");
            std::process::exit(2);
        });
        let plan = FaultPlan::parse(&text).unwrap_or_else(|e| {
            eprintln!("bad fault plan '{path}': {e}");
            std::process::exit(2);
        });
        plan.validate(cfg.graph.len(), nodes, max_replicas)
            .unwrap_or_else(|e| {
                eprintln!("fault plan '{path}' does not fit this cluster: {e}");
                std::process::exit(2);
            });
        eprintln!("fault plan: {} fault(s) from {path}", plan.faults.len());
        cfg.faults = plan;
    }
    let arrivals = profile.arrivals(SimTime::ZERO, end);
    eprintln!(
        "running {} on the {} backend for {duration}s at {rate:.0} req/s ({} profile; spikes: {spike_rate:.0} req/s x {spike_len_s}s), qos {qos}",
        controller_name,
        if live { "live" } else { "sim" },
        profile.label(),
    );
    let telemetry_path = arg(&args, "--telemetry");
    let telemetry: Option<SharedSink> = telemetry_path
        .as_ref()
        .map(|p| file_sink(p, "telemetry", Some(TRACE_SCHEMA)));
    let spans_path = arg(&args, "--spans");
    let spans: Option<SharedSink> = spans_path
        .as_ref()
        .map(|p| file_sink(p, "span", Some(SPANS_SCHEMA)));
    let metrics_path = arg(&args, "--metrics");
    let metrics: Option<SharedSink> = metrics_path.as_ref().map(|p| file_sink(p, "metrics", None));
    let profile_path = arg(&args, "--profile-out");
    let profile_out: Option<SharedSink> = profile_path
        .as_ref()
        .map(|p| file_sink(p, "profile", Some(PROFILE_SCHEMA)));
    let metrics_interval = SimDuration::from_millis(
        arg(&args, "--metrics-interval").map_or(100, |v| v.parse().expect("--metrics-interval")),
    );
    let metrics_listen = arg(&args, "--metrics-listen");
    if metrics_listen.is_some() && !live {
        eprintln!("--metrics-listen needs --backend live (the simulator has no wall clock for a scraper to exist in)");
        std::process::exit(2);
    }
    let slo_objective: f64 =
        arg(&args, "--slo-objective").map_or(99.9, |v| v.parse().expect("--slo-objective"));
    if !(0.0..100.0).contains(&slo_objective) {
        eprintln!("--slo-objective must be in [0, 100)");
        std::process::exit(2);
    }
    // The aggregation layer rides the metrics stream (and the scrape
    // endpoint), so it turns on with either metrics destination.
    let agg: Option<Arc<AggRuntime>> = (metrics.is_some() || metrics_listen.is_some()).then(|| {
        let mut agg_cfg = AggConfig::new(qos);
        agg_cfg.slo = SloConfig::default().with_objective_pct(slo_objective);
        Arc::new(AggRuntime::new(agg_cfg, nodes as usize))
    });
    let sampler = match arg(&args, "--span-sample") {
        Some(ratio) => match SpanSampler::parse_ratio(&ratio) {
            Some((n, m)) => SpanSampler::rate(n, m, seed),
            None => {
                eprintln!("bad --span-sample '{ratio}' (want N/M with 1 <= N <= M)");
                std::process::exit(2);
            }
        },
        None => SpanSampler::all(),
    };

    let result = if live {
        let opts = sg_live::LiveOpts {
            telemetry: telemetry.clone(),
            spans: spans.clone(),
            span_sampler: sampler,
            metrics: metrics.clone(),
            metrics_interval,
            metrics_listen: metrics_listen.clone(),
            agg: agg.clone(),
            profile: profile_out.clone(),
            ..sg_live::LiveOpts::default()
        };
        if let Some(addr) = &metrics_listen {
            eprintln!("serving Prometheus metrics on http://{addr}/metrics for the run");
        }
        let (result, stats) = sg_live::run_live_with_stats(cfg, factory.as_ref(), arrivals, opts);
        eprintln!(
            "live substrate: {} deliveries, {} freq updates applied, {} dropped (fr_dropped)",
            stats.deliveries, stats.fr_applied, stats.fr_dropped
        );
        if telemetry.is_some() || spans.is_some() || metrics.is_some() || profile_out.is_some() {
            eprintln!(
                "telemetry: {} events forwarded, {} dropped by the relay ring (decision {}, span {}, metrics {}, profile {})",
                stats.telemetry_forwarded,
                stats.telemetry_dropped,
                stats.telemetry_dropped_decision,
                stats.telemetry_dropped_span,
                stats.telemetry_dropped_metrics,
                stats.telemetry_dropped_profile,
            );
        }
        result
    } else {
        let mut sim = Simulation::new(cfg, factory.as_ref(), arrivals);
        if let Some(sink) = &telemetry {
            sim = sim.with_telemetry(Arc::clone(sink));
        }
        if let Some(sink) = &spans {
            sim = sim.with_spans(Arc::clone(sink), sampler);
        }
        if let Some(sink) = &metrics {
            sim = sim.with_metrics(Arc::clone(sink));
        }
        if let Some(a) = &agg {
            sim = sim.with_agg(Arc::clone(a));
        }
        if let Some(sink) = &profile_out {
            sim = sim.with_profile(Arc::clone(sink));
        }
        sim.run()
    };
    // Drop our handles so the JSONL writers flush before we report.
    drop(telemetry);
    drop(spans);
    drop(metrics);
    drop(profile_out);
    if let Some(p) = &telemetry_path {
        eprintln!("decision trace written to {p} (summarize with: sg-trace {p})");
    }
    if let Some(p) = &spans_path {
        eprintln!("span trace written to {p} (analyze with: sg-trace {p})");
    }
    if let Some(p) = &metrics_path {
        eprintln!("metrics timeline written to {p} (render with: sg-timeline {p})");
        eprintln!("  aggregation snapshots ride the same file (watch with: sg-trace watch {p})");
    }
    if let Some(p) = &profile_path {
        eprintln!("self-profile written to {p} (render with: sg-trace --profile {p})");
    }

    // wrk2-style output.
    let mut hist = LatencyHistogram::with_default_resolution();
    for p in result.points.iter().filter(|p| p.completion >= warmup) {
        hist.record(p.latency);
    }
    let report = RunReport::from_points(
        &result.points,
        qos,
        warmup,
        end,
        result.avg_cores,
        result.energy_j,
    );

    println!("  Latency Distribution (HdrHistogram)");
    for q in [50.0, 75.0, 90.0, 98.0, 99.0, 99.9, 99.99, 100.0] {
        let v = hist.percentile(q).unwrap_or(SimDuration::ZERO);
        println!("    {q:>6.2}%  {v}");
    }
    println!(
        "  {} requests in {}s ({:.0} req/s completed), {} dropped",
        report.requests,
        duration,
        report.requests as f64 / duration as f64,
        result.dropped,
    );
    println!("  Mean latency: {}", report.mean);
    println!();
    println!("  QoS limit:          {qos}");
    println!("  Violation volume:   {:.6} s^2", report.violation_volume);
    println!(
        "  Violating requests: {:.2}%",
        report.violation_rate * 100.0
    );
    println!("  Avg allocated cores: {:.1}", report.avg_cores);
    println!("  Energy (idle-subtracted): {:.0} J", report.energy_j);
    println!("  FirstResponder boosts: {}", result.packet_freq_boosts);

    // Cluster view from the mergeable aggregation layer: the per-node
    // shards merged at teardown (order-independent, exact).
    if let Some(agg) = &agg {
        let merged = agg.merged();
        let p = |q: f64| {
            merged
                .digest
                .percentile(q)
                .map_or("-".into(), |v| v.to_string())
        };
        println!();
        println!(
            "  SLO view (merged digest, {} request(s), rel err {:.1}%):",
            merged.digest.len(),
            100.0 * merged.digest.relative_error(),
        );
        println!(
            "    digest p50 {}  p99 {}  p99.9 {}",
            p(50.0),
            p(99.0),
            p(99.9)
        );
        let v = merged.slo.verdict_at_last();
        let burn = |b: Option<f64>| b.map_or("-".into(), |x| format!("{x:.2}x"));
        println!(
            "    objective {slo_objective}%: {}/{} beyond deadline, burn fast {}{} slow {}{}, budget {:.1}%",
            merged.slo.bad(),
            merged.slo.total(),
            burn(v.fast),
            if v.fast_alert { " ALERT" } else { "" },
            burn(v.slow),
            if v.slow_alert { " ALERT" } else { "" },
            100.0 * v.budget_remaining,
        );
        for e in merged.topk.top(3) {
            let (container, class) = topk_unpack(e.key);
            println!(
                "    top loss: {container} {} {:.3} ms (err {:.3} ms)",
                class.map_or("total", |c| c.name()),
                e.weight as f64 / 1e6,
                e.err as f64 / 1e6,
            );
        }
    }
}
