//! Chaos — controllers under deterministic fault injection.
//!
//! The paper evaluates SurgeGuard against load surges; this figure asks
//! what the same controllers do when the *infrastructure* misbehaves.
//! CHAIN runs at its calibrated base rate across two nodes — steady
//! load, so the injected fault is the only disturbance — and each arm
//! (Parties, Caladan, SurgeGuard, SurgeGuard-H) faces every fault class
//! of the [`sg_core::fault`] plan DSL in turn: a container crash, the
//! loss of a whole node, a connection-pool leak on the first edge,
//! cross-node network jitter, and a straggling replica. One fault per
//! run, injected 30% into the measurement window for a tenth of it,
//! identical across arms and paired by seed.
//!
//! Reported per (fault, arm): trimmed-mean violation volume, P98,
//! energy, and average cores, with the violation volume normalized two
//! ways — against Parties under the same fault (the paper's baseline)
//! and against the same arm's fault-free run (the degradation factor).

use crate::common::{ratio, run_trials, ExpProfile};
use crate::output::{fr, JsonSink, Table};
use serde_json::json;
use sg_controllers::{CaladanFactory, PartiesFactory, SurgeGuardFactory, SurgeGuardHFactory};
use sg_core::fault::{FaultKind, FaultPlan, FaultSpec};
use sg_core::ids::{NodeId, ServiceId};
use sg_core::time::{SimDuration, SimTime};
use sg_loadgen::SpikePattern;
use sg_sim::app::ConnModel;
use sg_sim::controller::ControllerFactory;
use sg_workloads::{prepare, CalibrationOptions, PreparedWorkload, Workload};

/// The evaluated line-up; Parties first — rows normalize to it.
pub const ARMS: [&str; 4] = ["parties", "caladan", "surgeguard", "sg-h"];

/// Fault classes, `none` first (the per-arm degradation baseline).
pub const FAULTS: [&str; 6] = [
    "none",
    "crash",
    "node-loss",
    "pool-leak",
    "jitter",
    "straggler",
];

fn factory_for(name: &str) -> Box<dyn ControllerFactory + Sync> {
    match name {
        "parties" => Box::new(PartiesFactory::default()),
        "caladan" => Box::new(CaladanFactory::default()),
        "surgeguard" => Box::new(SurgeGuardFactory::full()),
        "sg-h" => Box::new(SurgeGuardHFactory::default()),
        other => panic!("unknown chaos arm '{other}'"),
    }
}

/// CHAIN over two nodes (round-robin placement, so node 1 hosts services
/// 1 and 3 and every edge is a remote hop — the node-loss and jitter
/// faults need both).
fn workload() -> PreparedWorkload {
    prepare(Workload::Chain, 2, CalibrationOptions::default())
}

/// Connections to leak: three quarters of the first edge's calibrated
/// pool, leaving the parent a sliver of capacity far below the base
/// rate's Little's-law requirement.
fn leak_connections(pw: &PreparedWorkload) -> u32 {
    match pw.cfg.graph.services[0].children[0].conn {
        ConnModel::FixedPool(n) => (n * 3 / 4).max(1),
        ConnModel::PerRequest => panic!("CHAIN edges are fixed pools"),
    }
}

/// The fault plan for one class: a single fault starting 30% into the
/// measurement window, lasting a tenth of it (3 s under the quick
/// profile) — long enough to build a real backlog, short enough that
/// recovery and drain are both inside the window.
pub fn plan_for(fault: &str, pw: &PreparedWorkload, profile: &ExpProfile) -> FaultPlan {
    let at = SimTime::ZERO + profile.warmup + profile.measure.mul_f64(0.3);
    let duration = profile.measure.mul_f64(0.1);
    let kind = match fault {
        "none" => return FaultPlan::default(),
        "crash" => FaultKind::ContainerCrash {
            service: ServiceId(2),
        },
        "node-loss" => FaultKind::NodeLoss { node: NodeId(1) },
        "pool-leak" => FaultKind::PoolLeak {
            service: ServiceId(1),
            connections: leak_connections(pw),
        },
        "jitter" => FaultKind::NetworkJitter {
            extra: SimDuration::from_millis(1),
        },
        "straggler" => FaultKind::Straggler {
            service: ServiceId(2),
            replica: 0,
            slowdown: 4.0,
        },
        other => panic!("unknown fault class '{other}'"),
    };
    FaultPlan {
        faults: vec![FaultSpec { at, duration, kind }],
    }
}

/// Run the experiment.
pub fn run(profile: &ExpProfile, sink: &mut JsonSink) -> Vec<Table> {
    let pw = workload();
    let pattern = SpikePattern::constant(pw.base_rate);

    // Flattened (fault, arm) grid; par_map preserves input order, so the
    // JSON rows are identical for any worker count.
    let combos: Vec<(usize, usize)> = (0..FAULTS.len())
        .flat_map(|f| (0..ARMS.len()).map(move |a| (f, a)))
        .collect();
    let results = crate::parallel::par_map(combos, |(f, a)| {
        let mut pw = pw.clone();
        pw.cfg.faults = plan_for(FAULTS[f], &pw, profile);
        run_trials(&pw, factory_for(ARMS[a]).as_ref(), &pattern, profile)
    });
    let at = |f: usize, a: usize| &results[f * ARMS.len() + a];

    let mut t = Table::new(
        "Chaos — fault injection on CHAIN at base rate (one fault per run, 30% into the \
         window, 10% of it long)",
        &[
            "fault",
            "controller",
            "VV (s^2)",
            "VV vs parties",
            "VV vs fault-free",
            "P98 (ms)",
            "energy (J)",
            "avg cores",
        ],
    );
    for (f, fault) in FAULTS.iter().enumerate() {
        let base_vv = at(f, 0).violation_volume;
        for (a, arm) in ARMS.iter().enumerate() {
            let r = at(f, a);
            let clean_vv = at(0, a).violation_volume;
            t.row(vec![
                fault.to_string(),
                arm.to_string(),
                format!("{:.3e}", r.violation_volume),
                fr(ratio(r.violation_volume, base_vv)),
                fr(ratio(r.violation_volume, clean_vv)),
                format!("{:.2}", r.p98_s * 1e3),
                format!("{:.1}", r.energy_j),
                format!("{:.1}", r.avg_cores),
            ]);
            sink.push(json!({
                "experiment": "chaos",
                "fault": *fault,
                "controller": *arm,
                "vv": r.violation_volume,
                "vv_vs_parties": ratio(r.violation_volume, base_vv),
                "vv_vs_clean": ratio(r.violation_volume, clean_vv),
                "p98_s": r.p98_s,
                "energy_j": r.energy_j,
                "avg_cores": r.avg_cores,
            }));
        }
    }
    vec![t]
}
