//! # sg-experiments — regenerating every table and figure
//!
//! One module per evaluated artifact of the paper; the `sg-experiments`
//! binary drives them. Mapping (see DESIGN.md for the full index):
//!
//! | module | paper artifact |
//! |---|---|
//! | [`table1`] | Table I — controller comparison |
//! | [`fig04`] | Fig. 4 — detection delay vs violation volume |
//! | [`fig05`] | Fig. 5 — threading-model upscaling demo |
//! | [`fig06`] | Fig. 6 — sensitivity curves |
//! | [`fig10`] | Fig. 10 — short surges (FirstResponder) |
//! | [`fig11`] | Fig. 11 — long surges across workloads |
//! | [`fig12`] | Fig. 12 — surge-duration sweep |
//! | [`fig13`] | Fig. 13 — node scaling |
//! | [`fig14`] | Fig. 14 — allocation timeline |
//! | [`fig15`] | Fig. 15 — Escalator component breakdown |
//! | [`hybrid`] | §VII extension — ML-class + SurgeGuard hybrid |
//! | [`netsurge`] | extension — network-latency surges (abstract claim) |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod common;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod hybrid;
pub mod netsurge;
pub mod output;
pub mod parallel;
pub mod table1;
pub mod zoo;

pub use common::{run_one, run_trials, ExpProfile};
pub use output::{JsonSink, Table};
