//! Fig. 6 — sensitivity curves: execution time vs allocated cores for two
//! services of socialNetwork.
//!
//! The paper contrasts `post-store`, whose curve keeps dropping with more
//! cores (worth upscaling), against `user-timeline`, whose curve flattens
//! early (holds 7 cores when 4 would do). The curves here are measured
//! the same way the controller's online profiler would see them: mean
//! `execMetric` at the base request rate while holding one service at a
//! sweep allocation.

use crate::common::ExpProfile;
use crate::output::{JsonSink, Table};
use serde_json::json;
use sg_core::time::{SimDuration, SimTime};
use sg_sim::controller::NoopFactory;
use sg_sim::profile::constant_arrivals;
use sg_sim::runner::Simulation;
use sg_workloads::{prepare, CalibrationOptions, Workload};

/// Sweep range of logical cores.
pub const CORE_SWEEP: [u32; 6] = [2, 4, 6, 8, 10, 12];

/// Run the experiment.
pub fn run(profile: &ExpProfile, sink: &mut JsonSink) -> Vec<Table> {
    let pw = prepare(Workload::ReadUserTimeline, 1, CalibrationOptions::default());
    let svc_idx = |name: &str| {
        pw.cfg
            .graph
            .services
            .iter()
            .position(|s| s.name == name)
            .expect("service exists")
    };
    let targets = [
        ("post-storage-mongodb", svc_idx("post-storage-mongodb")),
        ("user-timeline-service", svc_idx("user-timeline-service")),
    ];

    let mut t = Table::new(
        "Fig 6 — sensitivity curves: mean execMetric (us) vs allocated cores at base rate",
        &["cores", "post-storage-mongodb", "user-timeline-service"],
    );
    // 2 services × 6 sweep points = 12 independent single runs; the
    // arrival schedule is shared (seed-free) across all of them.
    let arrivals: std::sync::Arc<[SimTime]> =
        constant_arrivals(pw.base_rate, SimTime::ZERO, SimTime::from_secs(5)).into();
    let jobs: Vec<(usize, u32)> = targets
        .iter()
        .flat_map(|&(_, idx)| CORE_SWEEP.iter().map(move |&c| (idx, c)))
        .collect();
    let samples = crate::parallel::par_map(jobs, |(idx, cores)| {
        let mut cfg = pw.cfg.clone();
        cfg.initial_cores[idx] = cores;
        cfg.end = SimTime::from_secs(5) + SimDuration::from_millis(200);
        cfg.measure_start = SimTime::from_secs(1);
        cfg.seed = profile.base_seed;
        let r = Simulation::new_shared(cfg, &NoopFactory, std::sync::Arc::clone(&arrivals)).run();
        r.profile[idx].mean_exec_metric.as_nanos() as f64 / 1000.0
    });

    for (i, &cores) in CORE_SWEEP.iter().enumerate() {
        let (s0, s1) = (samples[i], samples[CORE_SWEEP.len() + i]);
        t.row(vec![
            cores.to_string(),
            format!("{s0:.0}"),
            format!("{s1:.0}"),
        ]);
        sink.push(json!({
            "experiment": "fig06",
            "cores": cores,
            "post_storage_mongodb_us": s0,
            "user_timeline_service_us": s1,
        }));
    }
    vec![t]
}
