//! Fig. 14 — core allocations over time for `readUserTimeline` during a
//! 10 s 1.75× surge starting at t = 15 s.
//!
//! Paper expectations: Parties and CaladanAlgo keep feeding
//! `user-timeline-service` (it shows the inflated latency) until it holds
//! close to half the machine, starving `post-storage-service` and
//! `post-storage-memcached`; SurgeGuard spreads cores across the chain
//! and revokes them again mid-surge when sensitivity says they stopped
//! helping.

use crate::common::{run_one, ExpProfile};
use crate::output::{JsonSink, Table};
use serde_json::json;
use sg_controllers::{CaladanFactory, PartiesFactory, SurgeGuardFactory};
use sg_core::ids::ContainerId;
use sg_core::time::{SimDuration, SimTime};
use sg_loadgen::SpikePattern;
use sg_sim::controller::ControllerFactory;
use sg_workloads::{prepare, CalibrationOptions, Workload};

/// Services plotted, matching the paper's figure.
pub const SERVICES: [&str; 3] = [
    "user-timeline-service",
    "post-storage-service",
    "post-storage-memcached",
];

/// Run the experiment.
pub fn run(profile: &ExpProfile, sink: &mut JsonSink) -> Vec<Table> {
    let pw = prepare(Workload::ReadUserTimeline, 1, CalibrationOptions::default());
    let pattern = SpikePattern {
        base_rate: pw.base_rate,
        spike_rate: pw.base_rate * 1.75,
        spike_len: SimDuration::from_secs(10),
        period: SimDuration::from_secs(1000),
        first_spike: SimTime::from_secs(15),
    };
    let idx_of = |name: &str| {
        pw.cfg
            .graph
            .services
            .iter()
            .position(|s| s.name == name)
            .expect("service exists") as u32
    };
    let ids: Vec<u32> = SERVICES.iter().map(|n| idx_of(n)).collect();
    let sample_times: Vec<SimTime> = (10..=30).map(SimTime::from_secs).collect();

    let controllers: [&str; 3] = ["parties", "caladan", "surgeguard"];

    // Three independent traced runs, one per controller.
    let results = crate::parallel::par_map(controllers.to_vec(), |name| {
        let factory: Box<dyn ControllerFactory> = match name {
            "parties" => Box::new(PartiesFactory::default()),
            "caladan" => Box::new(CaladanFactory::default()),
            _ => Box::new(SurgeGuardFactory::full()),
        };
        run_one(
            &pw,
            factory.as_ref(),
            &pattern,
            SimDuration::from_secs(5),
            SimDuration::from_secs(27),
            profile.base_seed,
            true,
        )
        .1
    });

    let mut tables = Vec::new();
    for (name, result) in controllers.into_iter().zip(&results) {
        let trace = result.alloc_trace.as_ref().expect("trace enabled");
        let mut t = Table::new(
            &format!("Fig 14 — {name}: cores over time (surge 15s-25s at 1.75x)"),
            &["t (s)", SERVICES[0], SERVICES[1], SERVICES[2]],
        );
        let series: Vec<Vec<u32>> = ids
            .iter()
            .map(|&id| {
                trace.cores_at(
                    ContainerId(id),
                    &sample_times,
                    pw.cfg.initial_cores[id as usize],
                )
            })
            .collect();
        for (i, at) in sample_times.iter().enumerate() {
            t.row(vec![
                format!("{:.0}", at.as_secs_f64()),
                series[0][i].to_string(),
                series[1][i].to_string(),
                series[2][i].to_string(),
            ]);
        }
        sink.push(json!({
            "experiment": "fig14",
            "controller": name,
            "services": SERVICES,
            "t_s": sample_times.iter().map(|t| t.as_secs_f64()).collect::<Vec<_>>(),
            "cores": series,
        }));
        tables.push(t);
    }
    tables
}
