//! Table I — controller comparison: dependence awareness, distribution,
//! and update interval. The qualitative columns are design facts; the
//! update interval is *measured* from a short run (decision opportunities
//! per second) rather than quoted.

use crate::common::{run_one, ExpProfile};
use crate::output::{JsonSink, Table};
use crate::parallel::par_run;
use serde_json::json;
use sg_controllers::{CaladanFactory, PartiesFactory, SurgeGuardFactory};
use sg_core::time::SimDuration;
use sg_loadgen::SpikePattern;
use sg_sim::controller::ControllerFactory;
use sg_workloads::{prepare, CalibrationOptions, Workload};

/// Run the experiment.
pub fn run(profile: &ExpProfile, sink: &mut JsonSink) -> Vec<Table> {
    let pw = prepare(Workload::Chain, 1, CalibrationOptions::default());
    let pattern = SpikePattern::constant(pw.base_rate);
    let measure = SimDuration::from_secs(5);

    // Measured decision opportunities: slow-path ticks come from the
    // configured interval; SurgeGuard's fast path gets one decision
    // opportunity per delivered request packet. The three controller arms
    // are independent runs, fanned out in parallel and assembled in arm
    // order.
    let cases: [(&str, &str); 3] = [
        ("PARTIES", "No"),
        ("CaladanAlgo", "No"),
        ("SurgeGuard", "Yes"),
    ];
    let results: Vec<sg_sim::runner::RunResult> = par_run(
        cases
            .iter()
            .map(|&(name, _)| {
                let (pw, pattern) = (&pw, &pattern);
                Box::new(move || {
                    let factory: Box<dyn ControllerFactory> = match name {
                        "PARTIES" => Box::new(PartiesFactory::default()),
                        "CaladanAlgo" => Box::new(CaladanFactory::default()),
                        _ => Box::new(SurgeGuardFactory::full()),
                    };
                    run_one(
                        pw,
                        factory.as_ref(),
                        pattern,
                        SimDuration::from_secs(1),
                        measure,
                        profile.base_seed,
                        false,
                    )
                    .1
                }) as Box<dyn FnOnce() -> _ + Send>
            })
            .collect(),
    );

    let mut rows: Vec<(&str, &str, &str, String)> = Vec::new();
    for ((name, dep_aware), result) in cases.iter().zip(&results) {
        let interval = match *name {
            "PARTIES" => "500ms".to_string(),
            "CaladanAlgo" => "20ms (userspace; 5-20us with a custom stack)".to_string(),
            _ => {
                // Fast path: per-packet. Mean inter-packet gap during the run.
                let packets = result.completed * pw.cfg.graph.len() as u64;
                let gap_us = measure.as_secs_f64() * 1e6 / packets.max(1) as f64;
                format!("per-packet (~{gap_us:.0}us between rx decisions)")
            }
        };
        rows.push((name, dep_aware, "Yes", interval));
    }

    let mut t = Table::new(
        "Table I — controller comparison",
        &[
            "controller",
            "dependence aware",
            "distributed",
            "update interval",
        ],
    );
    // The ML row is quoted from the paper (no ML controller is built here;
    // the paper's point is its >1s decision latency, which motivates
    // SurgeGuard).
    t.row(vec![
        "ML (Sage/Sinan, quoted)".into(),
        "Yes".into(),
        "No".into(),
        ">1s".into(),
    ]);
    for (name, dep, dist, interval) in rows {
        t.row(vec![name.into(), dep.into(), dist.into(), interval.clone()]);
        sink.push(json!({
            "experiment": "table1",
            "controller": name,
            "dependence_aware": dep,
            "distributed": dist,
            "update_interval": interval,
        }));
    }
    vec![t]
}
