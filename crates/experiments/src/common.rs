//! Shared experiment machinery: the run→report pipeline, multi-trial
//! aggregation (parallel over trials, see [`crate::parallel`]), and the
//! quick/full sizing profiles.

use crate::parallel;
use serde::Serialize;
use sg_core::time::{SimDuration, SimTime};
use sg_loadgen::{AggregateReport, LatencyHistogram, RunReport, SpikePattern};
use sg_sim::controller::ControllerFactory;
use sg_sim::runner::{RunResult, SimBuffers, Simulation};
use sg_workloads::PreparedWorkload;
use std::sync::Arc;

/// Experiment sizing: `quick` keeps the whole suite tractable on a
/// laptop-class machine; `full` approaches the paper's protocol (longer
/// measurement windows, 17 trials with best/worst trimming).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ExpProfile {
    /// Trials per configuration (paper: 17).
    pub trials: usize,
    /// Warmup excluded from measurement.
    pub warmup: SimDuration,
    /// Measurement window length.
    pub measure: SimDuration,
    /// Base RNG seed; trial `i` uses `base_seed + i`.
    pub base_seed: u64,
}

impl ExpProfile {
    /// Laptop-scale profile: 3 surge cycles, 5 trials.
    pub fn quick() -> Self {
        ExpProfile {
            trials: 5,
            warmup: SimDuration::from_secs(5),
            measure: SimDuration::from_secs(30),
            base_seed: 1000,
        }
    }

    /// Paper-scale profile: 30 s warmup, 60 s measurement, 17 trials.
    pub fn full() -> Self {
        ExpProfile {
            trials: 17,
            warmup: SimDuration::from_secs(30),
            measure: SimDuration::from_secs(60),
            base_seed: 1000,
        }
    }

    /// Select by flag.
    pub fn new(full: bool) -> Self {
        if full {
            Self::full()
        } else {
            Self::quick()
        }
    }

    /// The RNG seed for trial `i`: `base_seed + i`.
    ///
    /// This is the harness-wide seed-derivation scheme (see DESIGN.md):
    /// a trial's seed depends only on the root seed and the trial index,
    /// never on execution order, so the parallel harness produces the
    /// exact trial set the serial one does — and arm `A`'s trial `i` and
    /// arm `B`'s trial `i` share a seed, giving paired (common random
    /// numbers) comparisons across controllers.
    pub fn trial_seed(&self, i: usize) -> u64 {
        self.base_seed + i as u64
    }
}

/// Per-worker scratch reused across trials: the simulator's recycled
/// allocations plus the report histogram. Contents are fully reset by
/// each use; only capacity carries over.
pub struct TrialScratch {
    buffers: SimBuffers,
    hist: LatencyHistogram,
}

impl Default for TrialScratch {
    fn default() -> Self {
        TrialScratch {
            buffers: SimBuffers::new(),
            hist: LatencyHistogram::with_default_resolution(),
        }
    }
}

/// Run one trial of `pw` under `factory` and `pattern`.
pub fn run_one(
    pw: &PreparedWorkload,
    factory: &dyn ControllerFactory,
    pattern: &SpikePattern,
    warmup: SimDuration,
    measure: SimDuration,
    seed: u64,
    trace: bool,
) -> (RunReport, RunResult) {
    let mut cfg = pw.cfg.clone();
    let w_start = SimTime::ZERO + warmup;
    let w_end = w_start + measure;
    cfg.end = w_end + SimDuration::from_millis(200);
    cfg.measure_start = w_start;
    cfg.seed = seed;
    cfg.trace_allocations = trace;
    let arrivals = pattern.arrivals(SimTime::ZERO, w_end);
    let result = Simulation::new(cfg, factory, arrivals).run();
    let report = RunReport::from_points(
        &result.points,
        pw.qos,
        w_start,
        w_end,
        result.avg_cores,
        result.energy_j,
    );
    (report, result)
}

/// Run `profile.trials` independent trials in parallel and aggregate with
/// the paper's trimmed-mean protocol.
///
/// The arrival schedule is seed-free, so it is computed once and shared
/// across trials; each worker reuses one [`TrialScratch`] (event heap,
/// invocation slab, histogram) for all trials it claims. Trial `i` runs
/// with [`ExpProfile::trial_seed`], making the report set identical
/// whatever the worker count.
pub fn run_trials(
    pw: &PreparedWorkload,
    factory: &(dyn ControllerFactory + Sync),
    pattern: &SpikePattern,
    profile: &ExpProfile,
) -> AggregateReport {
    let w_start = SimTime::ZERO + profile.warmup;
    let w_end = w_start + profile.measure;
    let arrivals: Arc<[SimTime]> = pattern.arrivals(SimTime::ZERO, w_end).into();
    let reports: Vec<RunReport> = parallel::par_map_with(
        (0..profile.trials).collect(),
        TrialScratch::default,
        |scratch, i| {
            let mut cfg = pw.cfg.clone();
            cfg.end = w_end + SimDuration::from_millis(200);
            cfg.measure_start = w_start;
            cfg.seed = profile.trial_seed(i);
            cfg.trace_allocations = false;
            let result = Simulation::new_shared(cfg, factory, Arc::clone(&arrivals))
                .run_reusing(&mut scratch.buffers);
            let report = RunReport::from_points_reusing(
                &mut scratch.hist,
                &result.points,
                pw.qos,
                w_start,
                w_end,
                result.avg_cores,
                result.energy_j,
            );
            scratch.buffers.recycle_points(result.points);
            report
        },
    );
    AggregateReport::from_reports(&reports)
}

/// Safe ratio for normalized reporting (paper figures normalize to
/// Parties): returns 1.0 when the baseline is ~zero and the value is too,
/// +inf when only the baseline is ~zero.
pub fn ratio(value: f64, baseline: f64) -> f64 {
    const EPS: f64 = 1e-12;
    if baseline.abs() < EPS {
        if value.abs() < EPS {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        value / baseline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_handles_degenerate_baselines() {
        assert_eq!(ratio(2.0, 4.0), 0.5);
        assert_eq!(ratio(0.0, 0.0), 1.0);
        assert!(ratio(1.0, 0.0).is_infinite());
    }

    #[test]
    fn profiles_differ() {
        let q = ExpProfile::quick();
        let f = ExpProfile::full();
        assert!(f.trials > q.trials);
        assert!(f.measure > q.measure);
        assert_eq!(ExpProfile::new(true).trials, f.trials);
        assert_eq!(ExpProfile::new(false).trials, q.trials);
    }
}
