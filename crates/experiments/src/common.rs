//! Shared experiment machinery: the run→report pipeline, multi-trial
//! aggregation (rayon-parallel), and the quick/full sizing profiles.

use rayon::prelude::*;
use serde::Serialize;
use sg_core::time::{SimDuration, SimTime};
use sg_loadgen::{AggregateReport, RunReport, SpikePattern};
use sg_sim::controller::ControllerFactory;
use sg_sim::runner::{RunResult, Simulation};
use sg_workloads::PreparedWorkload;

/// Experiment sizing: `quick` keeps the whole suite tractable on a
/// laptop-class machine; `full` approaches the paper's protocol (longer
/// measurement windows, 17 trials with best/worst trimming).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ExpProfile {
    /// Trials per configuration (paper: 17).
    pub trials: usize,
    /// Warmup excluded from measurement.
    pub warmup: SimDuration,
    /// Measurement window length.
    pub measure: SimDuration,
    /// Base RNG seed; trial `i` uses `base_seed + i`.
    pub base_seed: u64,
}

impl ExpProfile {
    /// Laptop-scale profile: 3 surge cycles, 5 trials.
    pub fn quick() -> Self {
        ExpProfile {
            trials: 5,
            warmup: SimDuration::from_secs(5),
            measure: SimDuration::from_secs(30),
            base_seed: 1000,
        }
    }

    /// Paper-scale profile: 30 s warmup, 60 s measurement, 17 trials.
    pub fn full() -> Self {
        ExpProfile {
            trials: 17,
            warmup: SimDuration::from_secs(30),
            measure: SimDuration::from_secs(60),
            base_seed: 1000,
        }
    }

    /// Select by flag.
    pub fn new(full: bool) -> Self {
        if full {
            Self::full()
        } else {
            Self::quick()
        }
    }
}

/// Run one trial of `pw` under `factory` and `pattern`.
pub fn run_one(
    pw: &PreparedWorkload,
    factory: &dyn ControllerFactory,
    pattern: &SpikePattern,
    warmup: SimDuration,
    measure: SimDuration,
    seed: u64,
    trace: bool,
) -> (RunReport, RunResult) {
    let mut cfg = pw.cfg.clone();
    let w_start = SimTime::ZERO + warmup;
    let w_end = w_start + measure;
    cfg.end = w_end + SimDuration::from_millis(200);
    cfg.measure_start = w_start;
    cfg.seed = seed;
    cfg.trace_allocations = trace;
    let arrivals = pattern.arrivals(SimTime::ZERO, w_end);
    let result = Simulation::new(cfg, factory, arrivals).run();
    let report = RunReport::from_points(
        &result.points,
        pw.qos,
        w_start,
        w_end,
        result.avg_cores,
        result.energy_j,
    );
    (report, result)
}

/// Run `profile.trials` independent trials in parallel and aggregate with
/// the paper's trimmed-mean protocol.
pub fn run_trials(
    pw: &PreparedWorkload,
    factory: &(dyn ControllerFactory + Sync),
    pattern: &SpikePattern,
    profile: &ExpProfile,
) -> AggregateReport {
    let reports: Vec<RunReport> = (0..profile.trials)
        .into_par_iter()
        .map(|i| {
            run_one(
                pw,
                factory,
                pattern,
                profile.warmup,
                profile.measure,
                profile.base_seed + i as u64,
                false,
            )
            .0
        })
        .collect();
    AggregateReport::from_reports(&reports)
}

/// Safe ratio for normalized reporting (paper figures normalize to
/// Parties): returns 1.0 when the baseline is ~zero and the value is too,
/// +inf when only the baseline is ~zero.
pub fn ratio(value: f64, baseline: f64) -> f64 {
    const EPS: f64 = 1e-12;
    if baseline.abs() < EPS {
        if value.abs() < EPS {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        value / baseline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_handles_degenerate_baselines() {
        assert_eq!(ratio(2.0, 4.0), 0.5);
        assert_eq!(ratio(0.0, 0.0), 1.0);
        assert!(ratio(1.0, 0.0).is_infinite());
    }

    #[test]
    fn profiles_differ() {
        let q = ExpProfile::quick();
        let f = ExpProfile::full();
        assert!(f.trials > q.trials);
        assert!(f.measure > q.measure);
        assert_eq!(ExpProfile::new(true).trials, f.trials);
        assert_eq!(ExpProfile::new(false).trials, q.trials);
    }
}
