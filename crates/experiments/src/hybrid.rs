//! §VII extension experiment — ML-class controller vs SurgeGuard vs the
//! hybrid deployment.
//!
//! The paper's Discussion proposes running heavy ML controllers (Sage,
//! Sinan) for periodic steady-state re-baselining with SurgeGuard
//! guarding transients in between, "without negatively impacting the
//! QoS". This experiment quantifies that: an ML-class controller alone
//! (global knowledge, > 1 s decision pipeline), SurgeGuard alone, and the
//! hybrid, all under the §VI-B surge protocol.
//!
//! Fresh controller factories are created per trial: the centralized
//! brain is shared among a run's node instances and must not leak across
//! runs.

use crate::common::{run_one, ExpProfile};
use crate::output::{JsonSink, Table};
use serde_json::json;
use sg_controllers::{CentralizedFactory, HybridFactory, SurgeGuardFactory};
use sg_core::time::SimDuration;
use sg_loadgen::{trimmed_mean, RunReport, SpikePattern};
use sg_sim::controller::ControllerFactory;
use sg_workloads::{prepare, CalibrationOptions, Workload};

/// Run the experiment.
pub fn run(profile: &ExpProfile, sink: &mut JsonSink) -> Vec<Table> {
    let pw = prepare(Workload::ReadUserTimeline, 1, CalibrationOptions::default());
    let pattern = SpikePattern::periodic(pw.base_rate, 1.75, SimDuration::from_secs(2));

    let arms: [&str; 3] = ["ml-centralized", "surgeguard", "hybrid"];
    let mut t = Table::new(
        "§VII extension — ML-class vs SurgeGuard vs hybrid (readUserTimeline, 1.75x surges)",
        &[
            "controller",
            "VV (s^2)",
            "P98 (ms)",
            "avg cores",
            "energy (J)",
        ],
    );
    // Flatten (arm × trial) into one parallel batch; trial seeds are the
    // index-derived scheme, so assembly order is deterministic.
    let jobs: Vec<(usize, usize)> = (0..arms.len())
        .flat_map(|a| (0..profile.trials).map(move |i| (a, i)))
        .collect();
    let all_reports: Vec<RunReport> = crate::parallel::par_map(jobs, |(a, i)| {
        // Fresh factory per trial (shared-brain hygiene).
        let factory: Box<dyn ControllerFactory> = match arms[a] {
            "ml-centralized" => Box::new(CentralizedFactory::default()),
            "surgeguard" => Box::new(SurgeGuardFactory::full()),
            _ => Box::new(HybridFactory::default()),
        };
        run_one(
            &pw,
            factory.as_ref(),
            &pattern,
            profile.warmup,
            profile.measure,
            profile.trial_seed(i),
            false,
        )
        .0
    });

    for (a, arm) in arms.into_iter().enumerate() {
        let reports = &all_reports[a * profile.trials..(a + 1) * profile.trials];
        let vv = trimmed_mean(
            &reports
                .iter()
                .map(|r| r.violation_volume)
                .collect::<Vec<_>>(),
        );
        let p98 = trimmed_mean(
            &reports
                .iter()
                .map(|r| r.p98.as_secs_f64() * 1e3)
                .collect::<Vec<_>>(),
        );
        let cores = trimmed_mean(&reports.iter().map(|r| r.avg_cores).collect::<Vec<_>>());
        let energy = trimmed_mean(&reports.iter().map(|r| r.energy_j).collect::<Vec<_>>());
        t.row(vec![
            arm.to_string(),
            format!("{vv:.4}"),
            format!("{p98:.1}"),
            format!("{cores:.1}"),
            format!("{energy:.0}"),
        ]);
        sink.push(json!({
            "experiment": "hybrid",
            "controller": arm,
            "vv": vv,
            "p98_ms": p98,
            "cores": cores,
            "energy_j": energy,
        }));
    }
    vec![t]
}
