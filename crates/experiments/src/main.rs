//! `sg-experiments` — regenerate the paper's tables and figures.
//!
//! ```text
//! sg-experiments [EXPERIMENTS...] [--full] [--json PATH] [--serial] [--threads N]
//!
//!   EXPERIMENTS   any of: table1 fig4 fig5 fig6 fig7 fig10 fig11 fig12
//!                 fig13 fig14 fig15 hybrid netsurge zoo chaos all
//!                 (default: all)
//!   --full        paper-scale protocol (17 trials, 60s windows) —
//!                 substantially slower
//!   --json PATH   also write machine-readable rows to PATH
//!   --serial      run everything on one thread (same output, slower)
//!   --threads N   worker-thread cap (default: SG_EXP_THREADS env var,
//!                 else all cores); output is identical for any N
//! ```

use sg_experiments::{ExpProfile, JsonSink, Table};
use std::time::Instant;

const ALL: [&str; 15] = [
    "table1", "fig4", "fig5", "fig6", "fig7", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
    "hybrid", "netsurge", "zoo", "chaos",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let json_pos = args.iter().position(|a| a == "--json");
    let json_path = json_pos.and_then(|i| args.get(i + 1)).cloned();
    let threads_pos = args.iter().position(|a| a == "--threads");
    let threads_arg = threads_pos.and_then(|i| args.get(i + 1)).map(|v| {
        v.parse::<usize>().unwrap_or_else(|_| {
            eprintln!("--threads expects a positive integer, got '{v}'");
            std::process::exit(2);
        })
    });
    if args.iter().any(|a| a == "--serial") {
        sg_experiments::parallel::set_threads(1);
    } else if let Some(n) = threads_arg {
        sg_experiments::parallel::set_threads(n);
    }
    // Flag-value positions, so values never parse as experiment names.
    let consumed: Vec<usize> = [json_pos, threads_pos]
        .iter()
        .flatten()
        .map(|&i| i + 1)
        .collect();
    let mut selected: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with("--") && !consumed.contains(i))
        .map(|(_, a)| a.clone())
        .collect();
    if selected.is_empty() || selected.iter().any(|s| s == "all") {
        selected = ALL.iter().map(|s| s.to_string()).collect();
    }
    for s in &selected {
        if !ALL.contains(&s.as_str()) {
            eprintln!("unknown experiment '{s}'; known: {}", ALL.join(" "));
            std::process::exit(2);
        }
    }

    let profile = ExpProfile::new(full);
    println!(
        "SurgeGuard reproduction — {} profile ({} trials, {} measurement, {} worker thread{})",
        if full { "full" } else { "quick" },
        profile.trials,
        profile.measure,
        sg_experiments::parallel::threads(),
        if sg_experiments::parallel::threads() == 1 {
            ""
        } else {
            "s"
        },
    );

    let suite_t0 = Instant::now();
    let mut sink = JsonSink::new();
    for name in &selected {
        let t0 = Instant::now();
        let tables: Vec<Table> = match name.as_str() {
            "table1" => sg_experiments::table1::run(&profile, &mut sink),
            "fig4" => sg_experiments::fig04::run(&profile, &mut sink),
            "fig5" => sg_experiments::fig05::run(&profile, &mut sink),
            "fig6" => sg_experiments::fig06::run(&profile, &mut sink),
            "fig7" => sg_experiments::fig07::run(&profile, &mut sink),
            "fig10" => sg_experiments::fig10::run(&profile, &mut sink),
            "fig11" => sg_experiments::fig11::run(&profile, &mut sink),
            "fig12" => sg_experiments::fig12::run(&profile, &mut sink),
            "fig13" => sg_experiments::fig13::run(&profile, &mut sink, full),
            "fig14" => sg_experiments::fig14::run(&profile, &mut sink),
            "fig15" => sg_experiments::fig15::run(&profile, &mut sink),
            "hybrid" => sg_experiments::hybrid::run(&profile, &mut sink),
            "netsurge" => sg_experiments::netsurge::run(&profile, &mut sink),
            "zoo" => sg_experiments::zoo::run(&profile, &mut sink),
            "chaos" => sg_experiments::chaos::run(&profile, &mut sink),
            _ => unreachable!(),
        };
        for t in &tables {
            print!("{}", t.render());
        }
        println!("\n[{} done in {:.1?}]", name, t0.elapsed());
    }

    println!(
        "\n[suite done in {:.1?} on {} worker thread(s)]",
        suite_t0.elapsed(),
        sg_experiments::parallel::threads(),
    );

    if let Some(path) = json_path {
        let value = sink.into_value();
        std::fs::write(&path, serde_json::to_string_pretty(&value).unwrap())
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("JSON rows written to {path}");
    }
}
