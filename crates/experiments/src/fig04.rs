//! Fig. 4 — why detection latency matters: an ideal controller with a
//! configurable detection delay handles a single 4 s surge.
//!
//! Paper expectations: relative to a 0.2 ms detection delay, a 0.5 s delay
//! (Parties-class) costs ~5× the violation volume and a 1 s delay
//! (ML-class) ~24×, while also needing 40–75 % more cores to absorb the
//! queued requests.

use crate::common::{ratio, run_one, ExpProfile};
use crate::output::{fr, JsonSink, Table};
use serde_json::json;
use sg_controllers::{OracleConfig, OracleFactory, OracleKnowledge};
use sg_core::time::{SimDuration, SimTime};
use sg_loadgen::SpikePattern;
use sg_workloads::{prepare, CalibrationOptions, Workload};

/// Detection delays evaluated: SurgeGuard-class, Parties-class, ML-class.
pub const DELAYS_MS: [f64; 3] = [0.2, 500.0, 1000.0];

/// Run the experiment.
pub fn run(profile: &ExpProfile, sink: &mut JsonSink) -> Vec<Table> {
    let mut pw = prepare(Workload::Chain, 1, CalibrationOptions::default());
    // Fig. 4 is the paper's illustrative example, not part of the 52-core
    // cluster protocol: the ideal controller must be able to allocate "the
    // exact amount of cores needed", so give the node headroom and make
    // the surge deep enough that queues grow fast while undetected.
    pw.cfg.constraints.total_cores = 128;
    pw.cfg.constraints.max_cores = 128;
    let magnitude = 2.5;

    // One 4 s surge starting 2 s into the window.
    let warmup = SimDuration::from_secs(3);
    let surge_start = SimTime::ZERO + warmup + SimDuration::from_secs(2);
    let surge_len = SimDuration::from_secs(4);
    let measure = SimDuration::from_secs(2) + surge_len + SimDuration::from_secs(6);
    let pattern = SpikePattern {
        base_rate: pw.base_rate,
        spike_rate: pw.base_rate * magnitude,
        spike_len: surge_len,
        period: SimDuration::from_secs(1000),
        first_spike: surge_start,
    };
    let knowledge = OracleKnowledge {
        work: pw.cfg.graph.services.iter().map(|s| s.work_mean).collect(),
    };

    // One independent arm per detection delay.
    let reports = crate::parallel::par_map(DELAYS_MS.to_vec(), |delay_ms| {
        let factory = OracleFactory {
            cfg: OracleConfig {
                surge_start,
                surge_end: surge_start + surge_len,
                spike_rate: pw.base_rate * magnitude,
                base_rate: pw.base_rate,
                delay: SimDuration::from_nanos((delay_ms * 1e6) as u64),
                utilization: 0.75,
                interval: SimDuration::from_micros(100),
            },
            knowledge: knowledge.clone(),
        };
        run_one(
            &pw,
            &factory,
            &pattern,
            warmup,
            measure,
            profile.base_seed,
            false,
        )
        .0
    });
    let results: Vec<(f64, _)> = DELAYS_MS.into_iter().zip(reports).collect();

    let base_vv = results[0].1.violation_volume;
    let base_cores = results[0].1.avg_cores;
    let mut t = Table::new(
        "Fig 4 — detection delay vs violation volume (ideal controller, 4s surge at 2.5x)",
        &["delay", "VV (s^2)", "VV ratio", "avg cores", "cores ratio"],
    );
    for (delay_ms, rep) in &results {
        t.row(vec![
            if *delay_ms < 1.0 {
                format!("{:.1}ms", delay_ms)
            } else {
                format!("{:.1}s", delay_ms / 1000.0)
            },
            format!("{:.3e}", rep.violation_volume),
            fr(ratio(rep.violation_volume, base_vv)),
            format!("{:.1}", rep.avg_cores),
            fr(ratio(rep.avg_cores, base_cores)),
        ]);
        sink.push(json!({
            "experiment": "fig04",
            "delay_ms": delay_ms,
            "vv": rep.violation_volume,
            "vv_ratio": ratio(rep.violation_volume, base_vv),
            "avg_cores": rep.avg_cores,
            "cores_ratio": ratio(rep.avg_cores, base_cores),
        }));
    }
    vec![t]
}
