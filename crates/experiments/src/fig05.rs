//! Fig. 5 — the threading-model hidden dependency, demonstrated live:
//! which containers each controller upscales during a surge on a
//! two-service application under both connection models.
//!
//! Expectations (from the paper's figure): a per-container controller
//! (Parties) upscales both services under connection-per-request (a) but
//! only the upstream one under a fixed-size threadpool (b); SurgeGuard's
//! metrics upscale both in both cases (c).

use crate::common::{run_one, ExpProfile};
use crate::output::{JsonSink, Table};
use serde_json::json;
use sg_controllers::{PartiesFactory, SurgeGuardFactory};
use sg_core::allocator::AllocConstraints;
use sg_core::config::PROFILE_TARGET_FACTOR;
use sg_core::time::{SimDuration, SimTime};
use sg_loadgen::SpikePattern;
use sg_sim::app::{linear_chain, ConnModel};
use sg_sim::cluster::{Placement, SimConfig};
use sg_sim::controller::ControllerFactory;
use sg_sim::profile::profile_low_load;
use sg_workloads::PreparedWorkload;
use sg_workloads::Workload;

/// Build the two-service scenario of Fig. 5 (downstream-bottlenecked).
fn two_service(conn: ConnModel) -> PreparedWorkload {
    let graph = linear_chain(
        "c1-c2",
        &[
            SimDuration::from_micros(600),
            SimDuration::from_micros(1200),
        ],
        conn,
        0.1,
    );
    let mut cfg = SimConfig::new(graph, Placement::single_node(2));
    cfg.constraints = AllocConstraints {
        total_cores: 20,
        min_cores: 2,
        max_cores: 20,
        core_step: 2,
    };
    cfg.initial_cores = vec![4, 6];
    cfg.seed = 5;
    let outcome = profile_low_load(
        cfg.clone(),
        300.0,
        SimDuration::from_secs(2),
        PROFILE_TARGET_FACTOR,
    );
    cfg.params = outcome.params;
    cfg.e2e_low_load = outcome.e2e_mean;
    PreparedWorkload {
        workload: Workload::Chain, // placeholder tag; scenario is custom
        cfg,
        base_rate: 3000.0,
        qos: outcome.e2e_p98.mul_f64(2.0),
        e2e_low: outcome.e2e_mean,
    }
}

fn peak(r: &sg_sim::runner::RunResult, id: u32, initial: u32) -> u32 {
    r.alloc_trace
        .as_ref()
        .unwrap()
        .events
        .iter()
        .filter(|e| e.container.0 == id)
        .map(|e| e.cores)
        .max()
        .unwrap_or(initial)
}

/// Run the experiment.
pub fn run(profile: &ExpProfile, sink: &mut JsonSink) -> Vec<Table> {
    let pattern_for = |base: f64| SpikePattern {
        base_rate: base,
        spike_rate: base * 1.75,
        spike_len: SimDuration::from_secs(30),
        period: SimDuration::from_secs(1000),
        first_spike: SimTime::from_secs(3),
    };
    let cases: [(&str, ConnModel, bool); 3] = [
        (
            "(a) per-request + per-container ctrl",
            ConnModel::PerRequest,
            false,
        ),
        (
            "(b) fixed pool + per-container ctrl",
            ConnModel::FixedPool(10),
            false,
        ),
        (
            "(c) fixed pool + SurgeGuard",
            ConnModel::FixedPool(10),
            true,
        ),
    ];

    // Each case profiles its own two-service scenario and runs one traced
    // trial — fully independent, so fan the three out.
    let peaks = crate::parallel::par_map(cases.to_vec(), |(_, conn, surgeguard)| {
        let factory: Box<dyn ControllerFactory> = if surgeguard {
            Box::new(SurgeGuardFactory::full())
        } else {
            Box::new(PartiesFactory::default())
        };
        let pw = two_service(conn);
        let pattern = pattern_for(pw.base_rate);
        let (_, result) = run_one(
            &pw,
            factory.as_ref(),
            &pattern,
            SimDuration::from_secs(2),
            SimDuration::from_secs(10),
            profile.base_seed,
            true,
        );
        (peak(&result, 0, 4), peak(&result, 1, 6))
    });

    let mut t = Table::new(
        "Fig 5 — who gets upscaled during a 1.75x surge (peak cores, initial c1=4 c2=6)",
        &["case", "c1 peak", "c2 peak", "c1 upscaled", "c2 upscaled"],
    );
    for (&(name, _, _), (c1, c2)) in cases.iter().zip(peaks) {
        t.row(vec![
            name.to_string(),
            c1.to_string(),
            c2.to_string(),
            if c1 > 4 { "yes" } else { "NO" }.to_string(),
            if c2 > 6 { "yes" } else { "NO" }.to_string(),
        ]);
        sink.push(json!({
            "experiment": "fig05",
            "case": name,
            "c1_peak": c1,
            "c2_peak": c2,
        }));
    }
    vec![t]
}
