//! Fig. 11 — long surges: normalized violation volume, cores and energy
//! for 1.25×/1.5×/1.75× request-rate surges (2 s every 10 s), across all
//! five workloads, for Parties / CaladanAlgo / SurgeGuard.
//!
//! Paper expectations: SurgeGuard reduces violation volume vs Parties by
//! ~19 % (1.25×), ~43 % (1.5×) and ~61 % (1.75×) on average, with 2–8 %
//! fewer cores and 2–4 % less energy; CaladanAlgo collapses on the
//! connection-per-request hotel workloads.

use crate::common::{ratio, run_trials, ExpProfile};
use crate::output::{fr, JsonSink, Table};
use serde_json::json;
use sg_controllers::{CaladanFactory, PartiesFactory, SurgeGuardFactory};
use sg_core::time::SimDuration;
use sg_loadgen::SpikePattern;
use sg_workloads::{prepare, CalibrationOptions, Workload};

/// Surge magnitudes evaluated (×base rate).
pub const MAGNITUDES: [f64; 3] = [1.25, 1.5, 1.75];

/// Run the experiment; returns the printed tables.
pub fn run(profile: &ExpProfile, sink: &mut JsonSink) -> Vec<Table> {
    let parties = PartiesFactory::default();
    let caladan = CaladanFactory::default();
    let surgeguard = SurgeGuardFactory::full();

    // Calibrate each workload once (in parallel); reused across
    // magnitudes/controllers.
    let prepared: Vec<_> = crate::parallel::par_map(Workload::all().to_vec(), |wl| {
        (wl, prepare(wl, 1, CalibrationOptions::default()))
    });

    // Fan out every (magnitude × workload × controller) trial batch; the
    // table assembly below reads the results back in sweep order.
    let jobs: Vec<(usize, usize, usize)> = (0..MAGNITUDES.len())
        .flat_map(|m| (0..prepared.len()).flat_map(move |w| (0..3).map(move |c| (m, w, c))))
        .collect();
    let aggs = crate::parallel::par_map(jobs, |(m, w, c)| {
        let pw = &prepared[w].1;
        let pattern =
            SpikePattern::periodic(pw.base_rate, MAGNITUDES[m], SimDuration::from_secs(2));
        let factory: &(dyn sg_sim::controller::ControllerFactory + Sync) = match c {
            0 => &parties,
            1 => &caladan,
            _ => &surgeguard,
        };
        run_trials(pw, factory, &pattern, profile)
    });
    let agg_of = |m: usize, w: usize, c: usize| &aggs[(m * prepared.len() + w) * 3 + c];

    let mut tables = Vec::new();
    for (mi, &mag) in MAGNITUDES.iter().enumerate() {
        let mut t = Table::new(
            &format!("Fig 11 — {mag}x surge (2s every 10s), normalized to Parties"),
            &[
                "workload",
                "VV parties (s^2)",
                "VV sg/p",
                "VV cal/p",
                "cores sg/p",
                "cores cal/p",
                "energy sg/p",
                "energy cal/p",
            ],
        );
        let mut sums = [0.0f64; 6];
        let mut n = 0.0;
        for (wi, (wl, _)) in prepared.iter().enumerate() {
            let wl = *wl;
            let p = agg_of(mi, wi, 0);
            let c = agg_of(mi, wi, 1);
            let s = agg_of(mi, wi, 2);

            let r = [
                ratio(s.violation_volume, p.violation_volume),
                ratio(c.violation_volume, p.violation_volume),
                ratio(s.avg_cores, p.avg_cores),
                ratio(c.avg_cores, p.avg_cores),
                ratio(s.energy_j, p.energy_j),
                ratio(c.energy_j, p.energy_j),
            ];
            for (acc, v) in sums.iter_mut().zip(r) {
                if v.is_finite() {
                    *acc += v;
                }
            }
            n += 1.0;
            t.row(vec![
                wl.label().to_string(),
                format!("{:.3e}", p.violation_volume),
                fr(r[0]),
                fr(r[1]),
                fr(r[2]),
                fr(r[3]),
                fr(r[4]),
                fr(r[5]),
            ]);
            sink.push(json!({
                "experiment": "fig11",
                "workload": wl.label(),
                "magnitude": mag,
                "vv": {"parties": p.violation_volume, "caladan": c.violation_volume,
                        "surgeguard": s.violation_volume},
                "cores": {"parties": p.avg_cores, "caladan": c.avg_cores,
                           "surgeguard": s.avg_cores},
                "energy": {"parties": p.energy_j, "caladan": c.energy_j,
                            "surgeguard": s.energy_j},
                "p98_s": {"parties": p.p98_s, "caladan": c.p98_s,
                           "surgeguard": s.p98_s},
            }));
        }
        t.row(vec![
            "AVG".to_string(),
            "-".to_string(),
            fr(sums[0] / n),
            fr(sums[1] / n),
            fr(sums[2] / n),
            fr(sums[3] / n),
            fr(sums[4] / n),
            fr(sums[5] / n),
        ]);
        tables.push(t);
    }
    tables
}
