//! Network-latency-surge experiment — the abstract's second surge class.
//!
//! SurgeGuard is "specifically designed to guard application QoS during
//! surges in load *and network latency*" (§I). The evaluation section
//! only exercises request-rate surges, so this extension injects fabric
//! latency surges instead: for a window, every cross-node hop pays extra
//! delay. FirstResponder's per-packet slack sees the lateness immediately
//! (late packets are late regardless of cause) and boosts the receiving
//! containers so the downstream work catches back up.

use crate::common::{run_one, ExpProfile};
use crate::output::{JsonSink, Table};
use serde_json::json;
use sg_controllers::{PartiesFactory, SurgeGuardFactory};
use sg_core::time::{SimDuration, SimTime};
use sg_loadgen::{trimmed_mean, RunReport, SpikePattern};
use sg_sim::controller::ControllerFactory;
use sg_sim::network::LatencySurge;
use sg_workloads::{prepare, CalibrationOptions, Workload};

/// Extra one-way fabric latencies injected.
pub const EXTRA_US: [u64; 3] = [200, 500, 1000];

/// Run the experiment: 2-node readUserTimeline (so RPCs actually cross
/// the fabric), constant base load, 2 s latency surges every 10 s.
pub fn run(profile: &ExpProfile, sink: &mut JsonSink) -> Vec<Table> {
    let pw = prepare(Workload::ReadUserTimeline, 2, CalibrationOptions::default());
    let pattern = SpikePattern::constant(pw.base_rate);

    let mut t = Table::new(
        "Extension — network latency surges (2 nodes, 2s surges every 10s)",
        &[
            "extra hop latency",
            "VV static (s^2)",
            "VV parties",
            "VV surgeguard",
            "SG boosts/run",
        ],
    );
    // Flatten (extra latency × controller × trial) into one batch.
    const CONTROLLERS: [&str; 3] = ["static", "parties", "surgeguard"];
    let jobs: Vec<(usize, usize, usize)> = (0..EXTRA_US.len())
        .flat_map(|e| (0..3).flat_map(move |c| (0..profile.trials).map(move |k| (e, c, k))))
        .collect();
    let all: Vec<(RunReport, u64)> = crate::parallel::par_map(jobs, |(e, c, k)| {
        let factory: Box<dyn ControllerFactory> = match CONTROLLERS[c] {
            "static" => Box::new(sg_sim::controller::NoopFactory),
            "parties" => Box::new(PartiesFactory::default()),
            _ => Box::new(SurgeGuardFactory::full()),
        };
        let mut pw2 = pw.clone();
        // Latency surge every 10 s for 2 s within the window.
        pw2.cfg.latency_surge = Some(LatencySurge {
            start: SimTime::ZERO + profile.warmup + SimDuration::from_secs(5),
            end: SimTime::ZERO + profile.warmup + SimDuration::from_secs(7),
            extra: SimDuration::from_micros(EXTRA_US[e]),
        });
        let (rep, res) = run_one(
            &pw2,
            factory.as_ref(),
            &pattern,
            profile.warmup,
            profile.measure,
            profile.trial_seed(k),
            false,
        );
        (rep, res.packet_freq_boosts)
    });

    for (ei, &extra) in EXTRA_US.iter().enumerate() {
        let mut vv = [0.0f64; 3];
        let mut boosts = 0u64;
        for (i, name) in CONTROLLERS.iter().enumerate() {
            let start = (ei * 3 + i) * profile.trials;
            let reports = &all[start..start + profile.trials];
            vv[i] = trimmed_mean(
                &reports
                    .iter()
                    .map(|(r, _)| r.violation_volume)
                    .collect::<Vec<_>>(),
            );
            if *name == "surgeguard" {
                boosts = reports.iter().map(|(_, b)| b).sum::<u64>() / reports.len() as u64;
            }
        }
        t.row(vec![
            format!("{extra}us"),
            format!("{:.4}", vv[0]),
            format!("{:.4}", vv[1]),
            format!("{:.4}", vv[2]),
            boosts.to_string(),
        ]);
        sink.push(json!({
            "experiment": "netsurge",
            "extra_us": extra,
            "vv": {"static": vv[0], "parties": vv[1], "surgeguard": vv[2]},
            "sg_boosts": boosts,
        }));
    }
    vec![t]
}
