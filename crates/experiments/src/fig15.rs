//! Fig. 15 — per-component breakdown of Escalator over the Parties base
//! allocator: Parties alone, Parties + new metrics, Parties + sensitivity,
//! and the complete Escalator.
//!
//! Paper expectations: the new metrics help only the fixed-threadpool
//! workload (`readUserTimeline` −23.5 % VV; `recommendHotel` unchanged
//! since `execMetric = execTime` without pools); sensitivity-based
//! allocation helps both (−28 % / −63 % VV, −5 % / −8 % cores); combined
//! they compound (−74 % average).

use crate::common::{ratio, run_trials, ExpProfile};
use crate::output::{fr, JsonSink, Table};
use serde_json::json;
use sg_controllers::{PartiesFactory, SurgeGuardFactory};
use sg_core::time::SimDuration;
use sg_loadgen::SpikePattern;
use sg_workloads::{prepare, CalibrationOptions, Workload};

/// Run the experiment.
pub fn run(profile: &ExpProfile, sink: &mut JsonSink) -> Vec<Table> {
    let arms: [(&str, bool, bool); 3] = [
        ("parties+metrics", true, false),
        ("parties+sens", false, true),
        ("escalator", true, true),
    ];
    let parties = PartiesFactory::default();
    let workloads = [Workload::ReadUserTimeline, Workload::RecommendHotel];

    // Calibrate both workloads in parallel, then fan out the 4 arms
    // (Parties base + 3 ablations) × 2 workloads.
    let prepared = crate::parallel::par_map(workloads.to_vec(), |wl| {
        prepare(wl, 1, CalibrationOptions::default())
    });
    let jobs: Vec<(usize, usize)> = (0..workloads.len())
        .flat_map(|w| (0..4).map(move |a| (w, a)))
        .collect();
    let aggs = crate::parallel::par_map(jobs, |(w, a)| {
        let pw = &prepared[w];
        let pattern = SpikePattern::periodic(pw.base_rate, 1.75, SimDuration::from_secs(2));
        if a == 0 {
            run_trials(pw, &parties, &pattern, profile)
        } else {
            let (_, metrics, sens) = arms[a - 1];
            let factory = SurgeGuardFactory::ablation(metrics, sens);
            run_trials(pw, &factory, &pattern, profile)
        }
    });

    let mut tables = Vec::new();
    for (wi, &wl) in workloads.iter().enumerate() {
        let pw = &prepared[wi];
        let base = &aggs[wi * 4];
        let mut t = Table::new(
            &format!(
                "Fig 15 — Escalator component breakdown, {} (normalized to Parties)",
                pw.cfg.graph.name
            ),
            &["configuration", "VV ratio", "cores ratio"],
        );
        t.row(vec!["parties".into(), "1.00".into(), "1.00".into()]);
        sink.push(json!({
            "experiment": "fig15", "workload": wl.label(), "arm": "parties",
            "vv": base.violation_volume, "cores": base.avg_cores,
        }));
        for (ai, (name, _, _)) in arms.iter().enumerate() {
            let name = *name;
            let a = &aggs[wi * 4 + ai + 1];
            t.row(vec![
                name.to_string(),
                fr(ratio(a.violation_volume, base.violation_volume)),
                fr(ratio(a.avg_cores, base.avg_cores)),
            ]);
            sink.push(json!({
                "experiment": "fig15", "workload": wl.label(), "arm": name,
                "vv": a.violation_volume, "cores": a.avg_cores,
                "vv_ratio": ratio(a.violation_volume, base.violation_volume),
                "cores_ratio": ratio(a.avg_cores, base.avg_cores),
            }));
        }
        tables.push(t);
    }
    tables
}
