//! Fig. 7/8 — internal-state timelines during a surge, reconstructed
//! from the metrics stream the run records about itself.
//!
//! The paper's Figs. 7 and 8 plot what SurgeGuard's two loops are doing
//! from the inside while a spike passes through: FirstResponder's
//! frequency boosts land within microseconds of the first late packets,
//! then Escalator's core reallocations take over on its 100 ms cadence
//! and the boosts retire. This experiment reproduces that view through
//! the same pipeline a user of `--metrics` gets: the run records its
//! per-cycle gauge timeline, the timeline is reconstructed with
//! [`sg_telemetry::timeline::TimelineSet`], and — the part that makes it
//! a claim rather than a plot — every alloc and boost event in the
//! decision trace is reconciled against the gauge series, exactly what
//! `sg-timeline --reconcile` asserts.

use crate::common::ExpProfile;
use crate::output::{JsonSink, Table};
use serde_json::json;
use sg_controllers::SurgeGuardFactory;
use sg_core::time::{SimDuration, SimTime};
use sg_loadgen::SpikePattern;
use sg_sim::runner::Simulation;
use sg_telemetry::timeline::{reconcile, TimelineSet};
use sg_telemetry::{MetricId, SharedSink, VecSink};
use sg_workloads::{prepare, CalibrationOptions, Workload};
use std::sync::Arc;

/// Run the experiment.
pub fn run(profile: &ExpProfile, sink: &mut JsonSink) -> Vec<Table> {
    let pw = prepare(Workload::Chain, 1, CalibrationOptions::default());
    let pattern = SpikePattern {
        base_rate: pw.base_rate,
        spike_rate: pw.base_rate * 1.75,
        spike_len: SimDuration::from_secs(2),
        period: SimDuration::from_secs(1000),
        first_spike: SimTime::from_secs(10),
    };
    let end = SimTime::from_secs(16);
    let mut cfg = pw.cfg.clone();
    cfg.end = end + SimDuration::from_millis(200);
    cfg.measure_start = SimTime::from_secs(5);
    cfg.seed = profile.base_seed;

    let metrics = VecSink::shared();
    let trace = VecSink::shared();
    let factory = SurgeGuardFactory::full();
    let arrivals = pattern.arrivals(SimTime::ZERO, end);
    let result = Simulation::new(cfg, &factory, arrivals)
        .with_telemetry(Arc::clone(&trace) as SharedSink)
        .with_metrics(Arc::clone(&metrics) as SharedSink)
        .run();
    assert!(result.completed > 0);

    let metric_events = metrics.take();
    let set = TimelineSet::from_events(metric_events.iter());
    let trace_events = trace.take();
    let grace = set
        .median_interval()
        .unwrap_or(SimDuration::from_millis(1))
        .max(SimDuration::from_millis(1));
    let report = reconcile(&set, &trace_events, grace);

    let containers = set.containers();
    let names: Vec<&str> = containers
        .iter()
        .map(|&c| pw.cfg.graph.services[c as usize].name.as_str())
        .collect();

    // Sample the reconstructed timeline every 500 ms across the surge
    // window (spike at 10 s for 2 s): before, during, and after.
    let sample_times: Vec<SimTime> = (16..=30)
        .map(|half_s| SimTime::ZERO + SimDuration::from_millis(half_s * 500))
        .collect();

    let mut tables = Vec::new();
    for (metric, label) in [
        (MetricId::Cores, "cores"),
        (MetricId::FreqLevel, "DVFS level"),
        (MetricId::FrBoosts, "FR boosts (cumulative)"),
    ] {
        let mut header: Vec<&str> = vec!["t (s)"];
        header.extend(names.iter());
        let mut t = Table::new(
            &format!("Fig 7/8 — {label} over time (surge 10s-12s at 1.75x)"),
            &header,
        );
        for &at in &sample_times {
            let mut row = vec![format!("{:.1}", at.as_secs_f64())];
            for &c in &containers {
                row.push(match set.value_at(c, metric, at) {
                    Some(v) => format!("{v:.0}"),
                    None => "-".into(),
                });
            }
            t.row(row);
        }
        tables.push(t);
    }

    let mut t = Table::new("Fig 7/8 — timeline vs decision trace", &["check", "value"]);
    t.row(vec!["samples".into(), set.samples.to_string()]);
    t.row(vec![
        "trace events confirmed in gauges".into(),
        report.checked.to_string(),
    ]);
    t.row(vec![
        "superseded within grace".into(),
        report.superseded.to_string(),
    ]);
    t.row(vec![
        "reconciled".into(),
        if report.passed() { "yes" } else { "NO" }.into(),
    ]);
    assert!(
        report.passed(),
        "fig7 timeline does not reconcile with its own decision trace:\n{}",
        report.render()
    );
    tables.push(t);

    sink.push(json!({
        "experiment": "fig7",
        "services": names,
        "t_s": sample_times.iter().map(|t| t.as_secs_f64()).collect::<Vec<_>>(),
        "cores": containers.iter().map(|&c| sample_times.iter()
            .map(|&at| set.value_at(c, MetricId::Cores, at).unwrap_or(0.0))
            .collect::<Vec<_>>()).collect::<Vec<_>>(),
        "freq_level": containers.iter().map(|&c| sample_times.iter()
            .map(|&at| set.value_at(c, MetricId::FreqLevel, at).unwrap_or(0.0))
            .collect::<Vec<_>>()).collect::<Vec<_>>(),
        "fr_boosts": containers.iter().map(|&c| sample_times.iter()
            .map(|&at| set.value_at(c, MetricId::FrBoosts, at).unwrap_or(0.0))
            .collect::<Vec<_>>()).collect::<Vec<_>>(),
        "reconcile_checked": report.checked,
        "reconcile_passed": report.passed(),
    }));
    tables
}
