//! Plain-text table rendering and JSON row collection for the experiment
//! harness.

use serde_json::Value;

/// A fixed-width text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n## {}\n\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("| ");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{c:>w$} | ", w = w));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&"-".repeat(w + 2));
            sep.push('|');
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Format a float ratio (e.g. normalized VV) compactly.
pub fn fr(v: f64) -> String {
    if v.is_infinite() {
        "inf".to_string()
    } else if v >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

/// Format a percentage change relative to 1.0 ("-38%" for 0.62).
pub fn pct_change(ratio: f64) -> String {
    if ratio.is_infinite() {
        return "inf".to_string();
    }
    format!("{:+.1}%", (ratio - 1.0) * 100.0)
}

/// Accumulates the machine-readable mirror of the printed tables.
#[derive(Debug, Default)]
pub struct JsonSink {
    rows: Vec<Value>,
}

impl JsonSink {
    /// Empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one row.
    pub fn push(&mut self, row: Value) {
        self.rows.push(row);
    }

    /// All rows as a JSON array.
    pub fn into_value(self) -> Value {
        Value::Array(self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "vv"]);
        t.row(vec!["surgeguard".into(), "0.39".into()]);
        t.row(vec!["parties".into(), "1.00".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("| surgeguard |"));
        assert!(s.lines().filter(|l| l.starts_with('|')).count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fr(0.391), "0.39");
        assert_eq!(fr(250.0), "250");
        assert_eq!(fr(f64::INFINITY), "inf");
        assert_eq!(pct_change(0.62), "-38.0%");
        assert_eq!(pct_change(1.05), "+5.0%");
    }

    #[test]
    fn json_sink_collects() {
        let mut s = JsonSink::new();
        s.push(json!({"a": 1}));
        s.push(json!({"b": 2}));
        let v = s.into_value();
        assert_eq!(v.as_array().unwrap().len(), 2);
    }
}
