//! The `sg-trace watch` engine: a rolling cluster view folded from a
//! metrics/span JSONL stream.
//!
//! [`Watcher`] consumes [`TelemetryEvent`]s one at a time (streamed or
//! tailed — see [`crate::reader`]) and maintains:
//!
//! * the **latest cumulative digest per node**, merged across nodes on
//!   demand (snapshots are state, so a dropped snapshot only costs
//!   staleness and the merge stays exact);
//! * **windowed SLO burn rates** rebuilt from the deltas between
//!   consecutive cumulative `slo` snapshots;
//! * the **latest heavy-hitter sketch per node** (whole-request loss
//!   per container), merged on demand;
//! * when the stream carries span records, a
//!   [`StreamingAttributor`] charging each violation's loss to the
//!   dominant hop's `(container, class)` — the critical-path view.
//!
//! The audit is strict about *inconsistency* (cumulative counters
//! moving backwards, malformed sketches, a stream with no aggregation
//! records at all) and lenient about *loss* (testified drops are
//! warnings: cumulative snapshots self-heal).

use crate::agg::{topk_unpack, LatencyDigest, TopK, TopKEntry};
use crate::critical::StreamingAttributor;
use crate::event::TelemetryEvent;
use crate::slo::{BurnVerdict, SloConfig, SloTracker};
use crate::span::SpanRecord;
use serde_json::{json, Value};
use sg_core::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// How many span records may wait for the deadline to become known
/// (from `--qos` or the first `slo` snapshot) before the oldest are
/// discarded.
const PENDING_SPAN_CAP: usize = 10_000;

/// Options for a watch session.
#[derive(Debug, Clone)]
pub struct WatchConfig {
    /// Explicit QoS deadline; `None` adopts the deadline carried by the
    /// stream's `slo` snapshots.
    pub qos: Option<SimDuration>,
    /// SLO objective as a percentage (e.g. `99.9`).
    pub objective_pct: f64,
    /// Heavy-hitter rows to report.
    pub topk: usize,
}

impl Default for WatchConfig {
    fn default() -> Self {
        WatchConfig {
            qos: None,
            objective_pct: 99.9,
            topk: 8,
        }
    }
}

/// Streaming fold of a metrics/span stream into a cluster view.
#[derive(Debug)]
pub struct Watcher {
    cfg: WatchConfig,
    /// Latest cumulative digest snapshot per node.
    digests: BTreeMap<u32, LatencyDigest>,
    /// Latest cumulative `(total, bad)` per node.
    counters: BTreeMap<u32, (u64, u64)>,
    /// Latest heavy-hitter snapshot per node.
    topks: BTreeMap<u32, TopK>,
    /// Windowed SLO counts rebuilt from snapshot deltas.
    window: SloTracker,
    /// Critical-path attribution, once the deadline is known.
    attributor: Option<StreamingAttributor>,
    pending_spans: Vec<SpanRecord>,
    qos_ns: Option<u64>,
    /// Events consumed.
    pub events: u64,
    /// Testified in-flight drops (warning, not audit failure).
    pub dropped: u64,
    /// Cumulative snapshots that moved backwards or failed to rebuild
    /// (audit failure).
    pub regressions: u64,
    /// Span records discarded while the deadline was unknown.
    pub spans_skipped: u64,
    /// Latest timestamp seen on any aggregation snapshot.
    pub last_at: SimTime,
}

impl Watcher {
    /// A watcher with the given options.
    pub fn new(cfg: WatchConfig) -> Self {
        let slo_cfg = SloConfig::default().with_objective_pct(cfg.objective_pct);
        let qos_ns = cfg.qos.map(SimDuration::as_nanos);
        Watcher {
            cfg,
            digests: BTreeMap::new(),
            counters: BTreeMap::new(),
            topks: BTreeMap::new(),
            window: SloTracker::new(slo_cfg),
            attributor: None,
            pending_spans: Vec::new(),
            qos_ns,
            events: 0,
            dropped: 0,
            regressions: 0,
            spans_skipped: 0,
            last_at: SimTime::ZERO,
        }
    }

    /// The deadline in effect, once known.
    pub fn qos(&self) -> Option<SimDuration> {
        self.qos_ns.map(SimDuration::from_nanos)
    }

    /// Fold one event.
    pub fn push(&mut self, event: TelemetryEvent) {
        self.events += 1;
        match event {
            TelemetryEvent::Digest { at, node, digest } => {
                self.last_at = self.last_at.max(at);
                match self.digests.get(&node.0) {
                    Some(old)
                        if old.sig_bits() != digest.sig_bits() || old.len() > digest.len() =>
                    {
                        self.regressions += 1;
                    }
                    _ => {
                        self.digests.insert(node.0, digest);
                    }
                }
            }
            TelemetryEvent::Slo {
                at,
                node,
                qos_ns,
                total,
                bad,
            } => {
                self.last_at = self.last_at.max(at);
                if self.qos_ns.is_none() {
                    self.qos_ns = Some(qos_ns);
                    self.drain_pending_spans();
                }
                let (prev_total, prev_bad) = self.counters.get(&node.0).copied().unwrap_or((0, 0));
                if total < prev_total || bad < prev_bad {
                    self.regressions += 1;
                    return;
                }
                self.window
                    .record_counts(at, total - prev_total, bad - prev_bad);
                self.counters.insert(node.0, (total, bad));
            }
            TelemetryEvent::TopK {
                at,
                node,
                capacity,
                entries,
            } => {
                self.last_at = self.last_at.max(at);
                match TopK::from_parts(capacity as usize, entries) {
                    Ok(sketch) => {
                        self.topks.insert(node.0, sketch);
                    }
                    Err(_) => self.regressions += 1,
                }
            }
            TelemetryEvent::Span(record) => match &mut self.attributor {
                Some(a) => a.push(record),
                None => {
                    self.pending_spans.push(record);
                    if self.pending_spans.len() > PENDING_SPAN_CAP {
                        self.pending_spans.remove(0);
                        self.spans_skipped += 1;
                    }
                    self.drain_pending_spans();
                }
            },
            TelemetryEvent::Dropped { count, .. } => self.dropped += count,
            _ => {}
        }
    }

    fn drain_pending_spans(&mut self) {
        let Some(qos_ns) = self.qos_ns else { return };
        if self.attributor.is_none() {
            self.attributor = Some(StreamingAttributor::new(
                SimDuration::from_nanos(qos_ns),
                self.cfg.topk.max(8),
                4096,
            ));
        }
        let attributor = self.attributor.as_mut().expect("just created");
        for record in self.pending_spans.drain(..) {
            attributor.push(record);
        }
    }

    /// Merge the latest per-node digests into one cluster digest.
    /// `None` when no digest snapshot has arrived (or resolutions
    /// disagree — counted as a regression).
    pub fn merged_digest(&mut self) -> Option<LatencyDigest> {
        let mut nodes = self.digests.values();
        let mut merged = nodes.next()?.clone();
        for d in nodes {
            if d.sig_bits() != merged.sig_bits() {
                self.regressions += 1;
                return None;
            }
            merged.merge(d);
        }
        Some(merged)
    }

    /// Cluster-wide cumulative `(total, bad)` from the latest
    /// snapshots.
    pub fn totals(&self) -> (u64, u64) {
        self.counters
            .values()
            .fold((0, 0), |(t, b), &(nt, nb)| (t + nt, b + nb))
    }

    /// Merged whole-request heavy hitters across nodes.
    pub fn merged_topk(&self) -> Option<TopK> {
        let mut nodes = self.topks.values();
        let mut merged = nodes.next()?.clone();
        for t in nodes {
            if t.capacity() == merged.capacity() {
                merged.merge(t);
            }
        }
        Some(merged)
    }

    /// Burn-rate verdict at the latest snapshot time.
    pub fn verdict(&self) -> BurnVerdict {
        self.window.verdict(self.last_at)
    }

    /// True when the stream carried any aggregation snapshots or
    /// attributable spans.
    pub fn has_data(&self) -> bool {
        !self.digests.is_empty()
            || !self.counters.is_empty()
            || self.attributor.as_ref().is_some_and(|a| a.traces > 0)
    }

    /// Audit findings that should fail an automated gate.
    pub fn audit(&self) -> Vec<String> {
        let mut issues = Vec::new();
        if !self.has_data() {
            issues.push(
                "no aggregation records in the stream (record with sg-loadtest --metrics, \
                 schema v3+)"
                    .into(),
            );
        }
        if self.regressions > 0 {
            issues.push(format!(
                "{} cumulative snapshot(s) regressed or failed to rebuild",
                self.regressions
            ));
        }
        let (total, bad) = self.totals();
        if bad > total {
            issues.push(format!("violations ({bad}) exceed requests ({total})"));
        }
        issues
    }

    fn render_topk_rows(&self, out: &mut String, label: &str, entries: &[TopKEntry]) {
        if entries.is_empty() {
            return;
        }
        let _ = writeln!(out, "  top offenders ({label}):");
        for e in entries {
            let (container, class) = topk_unpack(e.key);
            let class = class.map_or("total", |c| c.name());
            let _ = writeln!(
                out,
                "    {container:>6}  {class:<14} {:>12.3} ms lost  (err {:.3} ms)",
                e.weight as f64 / 1e6,
                e.err as f64 / 1e6,
            );
        }
    }

    /// Render the human-readable rolling report.
    pub fn render(&mut self) -> String {
        let mut out = String::new();
        let merged = self.merged_digest();
        match &merged {
            Some(d) => {
                let p = |q: f64| {
                    d.percentile(q)
                        .map_or("-".into(), |v| format!("{:.3}", v.as_nanos() as f64 / 1e6))
                };
                let _ = writeln!(
                    out,
                    "digest: {} request(s) across {} node(s)  p50 {} ms  p90 {} ms  \
                     p99 {} ms  p99.9 {} ms  max {} ms",
                    d.len(),
                    self.digests.len(),
                    p(50.0),
                    p(90.0),
                    p(99.0),
                    p(99.9),
                    p(100.0),
                );
            }
            None => {
                let _ = writeln!(out, "digest: no snapshots yet");
            }
        }
        let (total, bad) = self.totals();
        if total > 0 {
            let qos_ms = self
                .qos_ns
                .map_or("?".into(), |q| format!("{:.3}", q as f64 / 1e6));
            let _ = writeln!(
                out,
                "slo: {bad}/{total} beyond the {qos_ms} ms deadline ({:.4}% bad), \
                 objective {:.3}%",
                100.0 * bad as f64 / total as f64,
                self.cfg.objective_pct,
            );
            let v = self.verdict();
            let fmt_burn = |b: Option<f64>| b.map_or("-".into(), |x| format!("{x:.2}x"));
            let _ = writeln!(
                out,
                "  burn: fast {}{}  slow {}{}  budget remaining {:.1}%",
                fmt_burn(v.fast),
                if v.fast_alert { " ALERT" } else { "" },
                fmt_burn(v.slow),
                if v.slow_alert { " ALERT" } else { "" },
                100.0 * v.budget_remaining,
            );
        }
        if let Some(t) = self.merged_topk() {
            let rows = t.top(self.cfg.topk);
            self.render_topk_rows(&mut out, "whole-request loss", &rows);
        }
        if let Some(a) = &self.attributor {
            if a.traces > 0 {
                let _ = writeln!(
                    out,
                    "spans: {} trace(s), {} violation(s), {} unattributed, {} evicted",
                    a.traces, a.violations, a.unattributed, a.evicted
                );
                let rows = a.topk.top(self.cfg.topk);
                self.render_topk_rows(&mut out, "critical-path loss", &rows);
            }
        }
        if self.dropped > 0 {
            let _ = writeln!(
                out,
                "  !! {} event(s) dropped in-flight (snapshots self-heal; view may lag)",
                self.dropped
            );
        }
        out
    }

    /// Machine-readable summary (`sg-trace watch --json`).
    pub fn to_json(&mut self) -> Value {
        let digest = self.merged_digest().map(|d| {
            let p = |q: f64| d.percentile(q).map(|v| v.as_nanos());
            json!({
                "count": d.len(),
                "nodes": self.digests.len(),
                "sig_bits": d.sig_bits(),
                "relative_error": d.relative_error(),
                "p50_ns": p(50.0),
                "p90_ns": p(90.0),
                "p99_ns": p(99.0),
                "p999_ns": p(99.9),
                "max_ns": p(100.0),
            })
        });
        let (total, bad) = self.totals();
        let v = self.verdict();
        let topk_json = |entries: &[TopKEntry]| -> Vec<Value> {
            entries
                .iter()
                .map(|e| {
                    let (container, class) = topk_unpack(e.key);
                    json!({
                        "container": container.0,
                        "class": class.map(|c| c.name()),
                        "loss_ns": e.weight,
                        "err_ns": e.err,
                    })
                })
                .collect()
        };
        let topk = self.merged_topk().map(|t| topk_json(&t.top(self.cfg.topk)));
        let spans = self.attributor.as_ref().map(|a| {
            json!({
                "traces": a.traces,
                "violations": a.violations,
                "unattributed": a.unattributed,
                "evicted": a.evicted,
                "skipped": self.spans_skipped,
                "topk": topk_json(&a.topk.top(self.cfg.topk)),
            })
        });
        json!({
            "at_ns": self.last_at.as_nanos(),
            "qos_ns": self.qos_ns,
            "objective_pct": self.cfg.objective_pct,
            "digest": digest,
            "slo": {
                "total": total,
                "bad": bad,
                "burn_fast": v.fast,
                "burn_slow": v.slow,
                "fast_alert": v.fast_alert,
                "slow_alert": v.slow_alert,
                "budget_remaining": v.budget_remaining,
            },
            "topk": topk,
            "spans": spans,
            "dropped": self.dropped,
            "audit": self.audit(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::{AggConfig, AggRuntime};
    use sg_core::ids::{ContainerId, NodeId};

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    /// Feed a runtime's snapshot events back through a watcher: the
    /// round-tripped view must equal the runtime's own merged state.
    #[test]
    fn watcher_roundtrips_runtime_snapshots() {
        let rt = AggRuntime::new(AggConfig::new(us(500)), 3);
        for i in 0..300u64 {
            let node = NodeId((i % 3) as u32);
            let latency = us(100 + 10 * (i % 60)); // some beyond 500us
            rt.record(
                node,
                ContainerId((i % 7) as u32),
                SimTime::from_millis(i),
                latency,
            );
        }
        let mut w = Watcher::new(WatchConfig::default());
        for event in rt.all_node_events(SimTime::from_secs(1)) {
            w.push(event);
        }
        let merged = rt.merged();
        assert_eq!(w.merged_digest().unwrap(), merged.digest);
        assert_eq!(w.totals(), (merged.slo.total(), merged.slo.bad()));
        assert_eq!(w.merged_topk().unwrap(), merged.topk);
        assert_eq!(w.qos(), Some(us(500)));
        assert!(w.audit().is_empty(), "{:?}", w.audit());
    }

    /// Cumulative snapshots arriving repeatedly (periodic emission) must
    /// not double-count: the watcher keeps state, adds deltas.
    #[test]
    fn repeated_snapshots_do_not_double_count() {
        let rt = AggRuntime::new(AggConfig::new(us(500)), 1);
        let mut w = Watcher::new(WatchConfig::default());
        for i in 0..100u64 {
            rt.record(NodeId(0), ContainerId(0), SimTime::from_millis(i), us(100));
            if i % 10 == 0 {
                for event in rt.all_node_events(SimTime::from_millis(i)) {
                    w.push(event);
                }
            }
        }
        for event in rt.all_node_events(SimTime::from_millis(100)) {
            w.push(event);
        }
        assert_eq!(w.totals().0, 100);
        assert_eq!(w.merged_digest().unwrap().len(), 100);
    }

    #[test]
    fn counter_regression_fails_audit() {
        let mut w = Watcher::new(WatchConfig::default());
        let snap = |total, bad| TelemetryEvent::Slo {
            at: SimTime::from_millis(total),
            node: NodeId(0),
            qos_ns: 500_000,
            total,
            bad,
        };
        w.push(snap(100, 5));
        w.push(snap(90, 5)); // went backwards
        assert_eq!(w.regressions, 1);
        assert!(!w.audit().is_empty());
    }

    #[test]
    fn empty_stream_fails_audit() {
        let mut w = Watcher::new(WatchConfig::default());
        w.push(TelemetryEvent::Schema {
            schema: "sg-trace/v1".into(),
        });
        assert!(!w.has_data());
        assert!(!w.audit().is_empty());
    }

    #[test]
    fn violations_drive_burn_alerts_and_render() {
        let rt = AggRuntime::new(AggConfig::new(us(500)), 2);
        for i in 0..1000u64 {
            // Half the traffic violates: burn far beyond both limits.
            let latency = if i % 2 == 0 { us(2_000) } else { us(100) };
            rt.record(
                NodeId((i % 2) as u32),
                ContainerId(3),
                SimTime::from_millis(i),
                latency,
            );
        }
        let mut w = Watcher::new(WatchConfig::default());
        for event in rt.all_node_events(SimTime::from_secs(1)) {
            w.push(event);
        }
        let v = w.verdict();
        assert!(v.fast_alert && v.slow_alert, "{v:?}");
        let text = w.render();
        assert!(text.contains("ALERT"), "{text}");
        assert!(text.contains("top offenders"), "{text}");
        let json = w.to_json();
        let slo = json.get("slo").unwrap();
        assert_eq!(slo.get("fast_alert"), Some(&Value::Bool(true)));
        assert!(json.get("audit").unwrap().as_array().unwrap().is_empty());
    }
}
