//! # sg-telemetry — structured observability for SurgeGuard
//!
//! Records *why* every scaling decision happened, on both execution
//! substrates. The harnesses (the discrete-event simulator and the live
//! backend) and the SurgeGuard controller emit typed [`TelemetryEvent`]s
//! into a [`TelemetrySink`]; sinks serialize to JSONL ([`JsonlSink`]),
//! buffer in memory ([`VecSink`]), or relay through a bounded lock-free
//! ring ([`RingSink`]) so the live packet hot path never blocks on I/O.
//!
//! The event taxonomy covers the full decision loop:
//!
//! * [`TelemetryEvent::Action`] — every controller action as it passes
//!   the harness's enforcement layer, with its origin (decision cycle vs
//!   packet hook) and outcome (applied, deferred behind the MSR-write
//!   delay, clamped to constraints, or rejected as a cross-node
//!   violation of the decentralization contract).
//! * [`TelemetryEvent::Alloc`] — every allocation change that actually
//!   landed (cores, DVFS level, GHz).
//! * [`TelemetryEvent::FrBoost`] — FirstResponder packet-hook boosts
//!   with the triggering per-packet slack.
//! * [`TelemetryEvent::Window`] — the per-container window metrics each
//!   decision cycle saw.
//! * [`TelemetryEvent::Scoreboard`] — the Escalator's Table II candidate
//!   scoreboard plus a human-readable reason per emitted action.
//! * [`TelemetryEvent::Dropped`] — events lost in a bounded relay
//!   (explicit, never silent).
//!
//! The `sg-trace` binary summarizes a recorded JSONL trace: per-container
//! allocation timeline, boost→retire latency distribution, action
//! histogram, and a clamp/rejection audit (see [`summary`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod ring;
pub mod sink;
pub mod summary;

pub use event::{ActionKind, ActionOrigin, ActionOutcome, ScoredAction, TelemetryEvent};
pub use ring::{RingDrainer, RingSink, RingStats};
pub use sink::{JsonlSink, SharedSink, TelemetrySink, VecSink};
pub use summary::TraceSummary;
