//! # sg-telemetry — structured observability for SurgeGuard
//!
//! Records *why* every scaling decision happened, on both execution
//! substrates. The harnesses (the discrete-event simulator and the live
//! backend) and the SurgeGuard controller emit typed [`TelemetryEvent`]s
//! into a [`TelemetrySink`]; sinks serialize to JSONL ([`JsonlSink`]),
//! buffer in memory ([`VecSink`]), or relay through a bounded lock-free
//! ring ([`RingSink`]) so the live packet hot path never blocks on I/O.
//!
//! The event taxonomy covers the full decision loop:
//!
//! * [`TelemetryEvent::Action`] — every controller action as it passes
//!   the harness's enforcement layer, with its origin (decision cycle vs
//!   packet hook) and outcome (applied, deferred behind the MSR-write
//!   delay, clamped to constraints, or rejected as a cross-node
//!   violation of the decentralization contract).
//! * [`TelemetryEvent::Alloc`] — every allocation change that actually
//!   landed (cores, DVFS level, GHz).
//! * [`TelemetryEvent::FrBoost`] — FirstResponder packet-hook boosts
//!   with the triggering per-packet slack.
//! * [`TelemetryEvent::Window`] — the per-container window metrics each
//!   decision cycle saw.
//! * [`TelemetryEvent::Scoreboard`] — the Escalator's Table II candidate
//!   scoreboard plus a human-readable reason per emitted action.
//! * [`TelemetryEvent::Span`] — one span of a traced request's RPC call
//!   graph (see [`span`]): per-hop arrival, connection-pool wait,
//!   service and downstream time, network delay, and the frequency/slack
//!   state the rx hook saw on entry.
//! * [`TelemetryEvent::Dropped`] — events lost in a bounded relay
//!   (explicit, never silent).
//!
//! Per-request tracing is sampled deterministically
//! ([`span::SpanSampler`], seeded N-out-of-M) and analyzed by
//! [`critical::SpanReport`]: for every deadline-violating request the
//! span tree is walked to the dominant hop and the loss classified
//! (pool queue vs service vs network vs pre-boost frequency), producing
//! a per-container attribution histogram and folded-stack output for
//! inferno/speedscope.
//!
//! The `sg-trace` binary summarizes a recorded JSONL trace: per-container
//! allocation timeline, boost→retire latency distribution, action
//! histogram, a clamp/reconciliation audit (see [`summary`]; mismatches
//! exit nonzero), and the span-side critical-path report.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod agg;
pub mod critical;
pub mod event;
pub mod metrics;
pub mod profile;
pub mod reader;
pub mod ring;
pub mod sink;
pub mod slo;
pub mod span;
pub mod summary;
pub mod timeline;
pub mod watch;

pub use agg::{
    topk_key, topk_unpack, AggConfig, AggRuntime, ClusterAgg, LatencyDigest, TopK, TopKEntry,
};
pub use critical::{Attribution, LossClass, SpanReport, StreamingAttributor};
pub use event::{
    ActionKind, ActionOrigin, ActionOutcome, EventFamily, ReplicaPhase, ScoredAction,
    TelemetryEvent, SPANS_SCHEMA, TRACE_SCHEMA,
};
pub use metrics::{MetricId, MetricSample, MetricsRegistry, METRICS_SCHEMA_VERSION};
pub use profile::{
    LiveProfiler, ProfileMark, ProfilePhase, ProfileReport, SimProfiler, PROFILE_SCHEMA,
    PROFILE_SCHEMA_V1, PROFILE_SCHEMA_VERSION,
};
pub use reader::{read_trace, stream_trace, TailStream, TraceFile, TraceStream};
pub use ring::{RingDrainer, RingSink, RingStats};
pub use sink::{DemuxSink, FanoutSink, JsonlSink, SharedSink, TelemetrySink, VecSink};
pub use slo::{BurnVerdict, SloConfig, SloTracker};
pub use span::{SpanRecord, SpanSampler};
pub use summary::{SummaryBuilder, TraceSummary};
pub use timeline::{ReconcileReport, TimelineSet};
pub use watch::{WatchConfig, Watcher};
