//! Bounded lock-free relay for the live backend's hot paths.
//!
//! The live packet hook runs on worker threads where blocking on a file
//! write (or even a mutex) would perturb the latencies being measured.
//! [`RingSink`] therefore pushes events into a bounded lock-free MPMC
//! ring ([`crossbeam::queue::ArrayQueue`], the same primitive the
//! FirstResponder queue uses); a dedicated drainer thread pops them and
//! forwards to the real sink off-path. When the ring is full the event
//! is **dropped and counted** — never blocked on — and the drop total is
//! surfaced both in [`RingStats`] and as a trailing
//! [`TelemetryEvent::Dropped`] record in the trace itself, so losses are
//! explicit, never silent.
//!
//! The aggregation snapshots of [`crate::agg`] (digest / slo / topk)
//! are **cumulative state, not deltas**, precisely so this relay may
//! drop them: a lost snapshot costs staleness until the next emission,
//! never correctness of the merged view.

use crate::event::{EventFamily, TelemetryEvent};
use crate::sink::{SharedSink, TelemetrySink};
use crossbeam::queue::ArrayQueue;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// The four families, in a stable order for per-family counters.
const FAMILIES: [EventFamily; 4] = [
    EventFamily::Decision,
    EventFamily::Span,
    EventFamily::Metrics,
    EventFamily::Profile,
];

fn family_index(family: EventFamily) -> usize {
    match family {
        EventFamily::Decision => 0,
        EventFamily::Span => 1,
        EventFamily::Metrics => 2,
        EventFamily::Profile => 3,
    }
}

/// Lock-free, never-blocking sink front-end for hot paths.
///
/// Drops are counted **per event family** (decision / span / metrics):
/// once three streams share one relay, a single total would let a
/// metrics-sample flood hide span losses, and every output file would
/// have to confess to every other file's drops. Each family's loss is
/// testified by its own trailing [`TelemetryEvent::Dropped`] record,
/// which the demux routes only to that family's stream.
pub struct RingSink {
    queue: Arc<ArrayQueue<TelemetryEvent>>,
    dropped: [AtomicU64; 4],
    /// When set (profiling runs only), `emit` records the post-push
    /// queue length into `occupancy_high_water`. Off by default so the
    /// ~22 ns uninstrumented push path stays free of the extra length
    /// read — the profiler's own disabled-guard discipline.
    track_occupancy: bool,
    occupancy_high_water: AtomicU64,
}

impl RingSink {
    /// Build a ring of `capacity` events in front of `inner` and spawn
    /// the drainer thread. Shut down via [`RingDrainer::shutdown`] to
    /// drain remaining events and collect stats.
    pub fn spawn(inner: SharedSink, capacity: usize) -> (Arc<RingSink>, RingDrainer) {
        Self::spawn_inner(inner, capacity, false)
    }

    /// Like [`RingSink::spawn`], but with occupancy high-water tracking
    /// enabled — the profiling-run variant.
    pub fn spawn_tracking(inner: SharedSink, capacity: usize) -> (Arc<RingSink>, RingDrainer) {
        Self::spawn_inner(inner, capacity, true)
    }

    fn spawn_inner(
        inner: SharedSink,
        capacity: usize,
        track_occupancy: bool,
    ) -> (Arc<RingSink>, RingDrainer) {
        let sink = Arc::new(RingSink {
            queue: Arc::new(ArrayQueue::new(capacity.max(1))),
            dropped: std::array::from_fn(|_| AtomicU64::new(0)),
            track_occupancy,
            occupancy_high_water: AtomicU64::new(0),
        });
        let stop = Arc::new(AtomicBool::new(false));

        let drainer = {
            let queue = Arc::clone(&sink.queue);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut forwarded = 0u64;
                loop {
                    match queue.pop() {
                        Some(event) => {
                            inner.emit(event);
                            forwarded += 1;
                        }
                        None => {
                            if stop.load(Ordering::Acquire) {
                                inner.flush();
                                return (inner, forwarded);
                            }
                            std::thread::yield_now();
                        }
                    }
                }
            })
        };

        let handle = RingDrainer {
            sink: Arc::clone(&sink),
            stop,
            drainer: Some(drainer),
        };
        (sink, handle)
    }

    /// Events dropped so far because the ring was full, all families.
    pub fn dropped(&self) -> u64 {
        self.dropped.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Events of one family dropped so far.
    pub fn dropped_for(&self, family: EventFamily) -> u64 {
        self.dropped[family_index(family)].load(Ordering::Relaxed)
    }

    /// Highest queue occupancy observed after a successful push. Always
    /// 0 unless the ring was spawned with [`RingSink::spawn_tracking`].
    pub fn occupancy_high_water(&self) -> u64 {
        self.occupancy_high_water.load(Ordering::Relaxed)
    }
}

impl TelemetrySink for RingSink {
    /// Push without blocking; a full ring drops the event and counts it
    /// against the event's family.
    fn emit(&self, event: TelemetryEvent) {
        match self.queue.push(event) {
            Ok(()) => {
                if self.track_occupancy {
                    self.occupancy_high_water
                        .fetch_max(self.queue.len() as u64, Ordering::Relaxed);
                }
            }
            Err(event) => {
                self.dropped[family_index(event.family())].fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Totals reported by the drainer at shutdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingStats {
    /// Events forwarded to the inner sink (including the trailing
    /// `Dropped` records, if any were emitted).
    pub forwarded: u64,
    /// Events lost to a full ring, all families.
    pub dropped: u64,
    /// Decision-trace events lost.
    pub dropped_decision: u64,
    /// Span records lost.
    pub dropped_span: u64,
    /// Metrics samples lost.
    pub dropped_metrics: u64,
    /// Profile records lost.
    pub dropped_profile: u64,
}

/// Owns the drainer thread; joining it finalizes the trace.
pub struct RingDrainer {
    sink: Arc<RingSink>,
    stop: Arc<AtomicBool>,
    drainer: Option<JoinHandle<(SharedSink, u64)>>,
}

impl RingDrainer {
    /// Stop the drainer after it empties the ring. For every event
    /// family with a nonzero drop counter, a family-tagged
    /// [`TelemetryEvent::Dropped`] record is appended to the inner sink
    /// so each stream testifies to its own losses.
    pub fn shutdown(mut self) -> RingStats {
        self.stop.store(true, Ordering::Release);
        let (inner, mut forwarded) = self
            .drainer
            .take()
            .expect("shutdown called once")
            .join()
            .expect("telemetry drainer panicked");
        let mut per_family = [0u64; 4];
        for family in FAMILIES {
            let count = self.sink.dropped_for(family);
            per_family[family_index(family)] = count;
            if count > 0 {
                inner.emit(TelemetryEvent::Dropped {
                    count,
                    family: Some(family),
                });
                forwarded += 1;
            }
        }
        let dropped: u64 = per_family.iter().sum();
        if dropped > 0 {
            inner.flush();
        }
        RingStats {
            forwarded,
            dropped,
            dropped_decision: per_family[0],
            dropped_span: per_family[1],
            dropped_metrics: per_family[2],
            dropped_profile: per_family[3],
        }
    }
}

impl Drop for RingDrainer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(d) = self.drainer.take() {
            let _ = d.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{MetricId, MetricSample};
    use crate::sink::VecSink;
    use crate::span::SpanRecord;
    use sg_core::ids::{ContainerId, NodeId};
    use sg_core::time::{SimDuration, SimTime};

    fn decision_event(count: u64) -> TelemetryEvent {
        TelemetryEvent::Dropped {
            count,
            family: None,
        }
    }

    fn span_event() -> TelemetryEvent {
        TelemetryEvent::Span(SpanRecord {
            trace: 0,
            span: 1,
            parent: None,
            container: None,
            node: None,
            start: SimTime::ZERO,
            end: SimTime::from_micros(5),
            net_in: SimDuration::ZERO,
            conn_wait: SimDuration::ZERO,
            service: SimDuration::ZERO,
            downstream: SimDuration::from_micros(5),
            freq_level: 0,
            slack_ns: 0,
        })
    }

    fn metric_event() -> TelemetryEvent {
        TelemetryEvent::Metric(MetricSample {
            at: SimTime::from_micros(7),
            node: NodeId(0),
            container: ContainerId(0),
            metric: MetricId::Cores,
            value: 2.0,
        })
    }

    #[test]
    fn ring_forwards_everything_when_not_full() {
        let inner = VecSink::shared();
        let (ring, drainer) = RingSink::spawn(inner.clone(), 1024);
        for count in 0..100 {
            ring.emit(decision_event(count));
        }
        let stats = drainer.shutdown();
        assert_eq!(stats.forwarded, 100);
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.dropped_decision, 0);
        assert_eq!(stats.dropped_span, 0);
        assert_eq!(stats.dropped_metrics, 0);
        assert_eq!(inner.take().len(), 100);
    }

    /// Inner sink that blocks until released, so the ring can fill;
    /// records everything it eventually forwards.
    struct Gate {
        rx: std::sync::Mutex<std::sync::mpsc::Receiver<()>>,
        seen: std::sync::Mutex<Vec<TelemetryEvent>>,
    }
    impl TelemetrySink for Gate {
        fn emit(&self, e: TelemetryEvent) {
            let _ = self.rx.lock().unwrap().recv();
            self.seen.lock().unwrap().push(e);
        }
    }

    #[test]
    fn full_ring_drops_counts_and_testifies() {
        let (tx, rx) = std::sync::mpsc::channel();
        let gate = Arc::new(Gate {
            rx: std::sync::Mutex::new(rx),
            seen: std::sync::Mutex::new(Vec::new()),
        });
        let (ring, drainer) = RingSink::spawn(gate.clone(), 2);
        // The drainer grabs at most one event before blocking; pushing
        // capacity + 3 guarantees at least one drop.
        for count in 0..5 {
            ring.emit(decision_event(count));
        }
        assert!(ring.dropped() >= 1, "full ring must drop");
        drop(tx); // release the gate
        let stats = drainer.shutdown();
        assert!(stats.dropped >= 1);
        assert_eq!(stats.dropped, stats.dropped_decision, "all drops decision");
        // The trailing Dropped record is forwarded on top of the queued
        // events the drainer managed to deliver.
        assert_eq!(
            gate.seen.lock().unwrap().len() as u64,
            stats.forwarded,
            "drainer forwards exactly what it reports"
        );
    }

    /// Satellite regression test: with three families sharing the ring,
    /// drops are counted per family and each family's loss is testified
    /// by its own tagged trailing record.
    #[test]
    fn drops_are_counted_and_testified_per_family() {
        let (tx, rx) = std::sync::mpsc::channel();
        let gate = Arc::new(Gate {
            rx: std::sync::Mutex::new(rx),
            seen: std::sync::Mutex::new(Vec::new()),
        });
        // Capacity 2 and a blocked drainer: at most 3 events are ever
        // absorbed (2 ring slots + 1 held inside the gated emit), so
        // the later pushes must drop regardless of thread timing.
        let (ring, drainer) = RingSink::spawn(gate.clone(), 2);
        for count in 0..3 {
            ring.emit(decision_event(count));
        }
        for _ in 0..4 {
            ring.emit(span_event());
        }
        for _ in 0..4 {
            ring.emit(metric_event());
        }
        assert!(ring.dropped_for(EventFamily::Span) >= 3);
        assert!(ring.dropped_for(EventFamily::Metrics) >= 3);
        drop(tx); // release the gate
        let stats = drainer.shutdown();
        assert_eq!(
            stats.dropped,
            stats.dropped_decision + stats.dropped_span + stats.dropped_metrics,
            "per-family counts partition the total"
        );
        assert!(stats.dropped_span >= 3);
        assert!(stats.dropped_metrics >= 3);
        // Every nonzero family appears as exactly one tagged trailing
        // record whose count matches the stats.
        let seen = gate.seen.lock().unwrap();
        for (family, expected) in [
            (EventFamily::Decision, stats.dropped_decision),
            (EventFamily::Span, stats.dropped_span),
            (EventFamily::Metrics, stats.dropped_metrics),
        ] {
            let testimonies: Vec<u64> = seen
                .iter()
                .filter_map(|e| match e {
                    TelemetryEvent::Dropped {
                        count,
                        family: Some(f),
                    } if *f == family => Some(*count),
                    _ => None,
                })
                .collect();
            if expected > 0 {
                assert_eq!(testimonies, vec![expected], "{family:?}");
            } else {
                assert!(testimonies.is_empty(), "{family:?}");
            }
        }
    }

    /// Watermark correctness: with the drainer blocked (forced
    /// backpressure), a tracking ring's occupancy high-water must reach
    /// exactly its capacity; an untracked ring always reports zero.
    #[test]
    fn occupancy_high_water_matches_forced_backpressure() {
        let (tx, rx) = std::sync::mpsc::channel();
        let gate = Arc::new(Gate {
            rx: std::sync::Mutex::new(rx),
            seen: std::sync::Mutex::new(Vec::new()),
        });
        let (ring, drainer) = RingSink::spawn_tracking(gate.clone(), 8);
        // The drainer absorbs at most one event before blocking in the
        // gate; 16 pushes therefore fill all 8 slots no matter how the
        // threads interleave, and the high-water must hit capacity.
        for count in 0..16 {
            ring.emit(decision_event(count));
        }
        assert_eq!(ring.occupancy_high_water(), 8);
        assert!(ring.dropped() >= 1, "a full ring under backpressure drops");
        drop(tx);
        drainer.shutdown();

        // The default (untracked) spawn keeps the hot path clean and
        // reports zero even when events flow.
        let inner = VecSink::shared();
        let (ring, drainer) = RingSink::spawn(inner, 8);
        for count in 0..4 {
            ring.emit(decision_event(count));
        }
        assert_eq!(ring.occupancy_high_water(), 0);
        drainer.shutdown();
    }

    #[test]
    fn shutdown_drains_backlog_before_returning() {
        let inner = VecSink::shared();
        let (ring, drainer) = RingSink::spawn(inner.clone(), 64);
        for count in 0..64 {
            ring.emit(decision_event(count));
        }
        let stats = drainer.shutdown();
        assert_eq!(stats.forwarded + stats.dropped, 64);
        assert_eq!(inner.take().len() as u64, stats.forwarded);
    }
}
