//! Bounded lock-free relay for the live backend's hot paths.
//!
//! The live packet hook runs on worker threads where blocking on a file
//! write (or even a mutex) would perturb the latencies being measured.
//! [`RingSink`] therefore pushes events into a bounded lock-free MPMC
//! ring ([`crossbeam::queue::ArrayQueue`], the same primitive the
//! FirstResponder queue uses); a dedicated drainer thread pops them and
//! forwards to the real sink off-path. When the ring is full the event
//! is **dropped and counted** — never blocked on — and the drop total is
//! surfaced both in [`RingStats`] and as a trailing
//! [`TelemetryEvent::Dropped`] record in the trace itself, so losses are
//! explicit, never silent.

use crate::event::TelemetryEvent;
use crate::sink::{SharedSink, TelemetrySink};
use crossbeam::queue::ArrayQueue;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Lock-free, never-blocking sink front-end for hot paths.
pub struct RingSink {
    queue: Arc<ArrayQueue<TelemetryEvent>>,
    dropped: AtomicU64,
}

impl RingSink {
    /// Build a ring of `capacity` events in front of `inner` and spawn
    /// the drainer thread. Shut down via [`RingDrainer::shutdown`] to
    /// drain remaining events and collect stats.
    pub fn spawn(inner: SharedSink, capacity: usize) -> (Arc<RingSink>, RingDrainer) {
        let sink = Arc::new(RingSink {
            queue: Arc::new(ArrayQueue::new(capacity.max(1))),
            dropped: AtomicU64::new(0),
        });
        let stop = Arc::new(AtomicBool::new(false));

        let drainer = {
            let queue = Arc::clone(&sink.queue);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut forwarded = 0u64;
                loop {
                    match queue.pop() {
                        Some(event) => {
                            inner.emit(event);
                            forwarded += 1;
                        }
                        None => {
                            if stop.load(Ordering::Acquire) {
                                inner.flush();
                                return (inner, forwarded);
                            }
                            std::thread::yield_now();
                        }
                    }
                }
            })
        };

        let handle = RingDrainer {
            sink: Arc::clone(&sink),
            stop,
            drainer: Some(drainer),
        };
        (sink, handle)
    }

    /// Events dropped so far because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl TelemetrySink for RingSink {
    /// Push without blocking; a full ring drops the event and counts it.
    fn emit(&self, event: TelemetryEvent) {
        if self.queue.push(event).is_err() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Totals reported by the drainer at shutdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingStats {
    /// Events forwarded to the inner sink (including the trailing
    /// `Dropped` record, if one was emitted).
    pub forwarded: u64,
    /// Events lost to a full ring.
    pub dropped: u64,
}

/// Owns the drainer thread; joining it finalizes the trace.
pub struct RingDrainer {
    sink: Arc<RingSink>,
    stop: Arc<AtomicBool>,
    drainer: Option<JoinHandle<(SharedSink, u64)>>,
}

impl RingDrainer {
    /// Stop the drainer after it empties the ring. If any events were
    /// dropped, a [`TelemetryEvent::Dropped`] record is appended to the
    /// inner sink so the trace itself testifies to the loss.
    pub fn shutdown(mut self) -> RingStats {
        self.stop.store(true, Ordering::Release);
        let (inner, mut forwarded) = self
            .drainer
            .take()
            .expect("shutdown called once")
            .join()
            .expect("telemetry drainer panicked");
        let dropped = self.sink.dropped();
        if dropped > 0 {
            inner.emit(TelemetryEvent::Dropped { count: dropped });
            inner.flush();
            forwarded += 1;
        }
        RingStats { forwarded, dropped }
    }
}

impl Drop for RingDrainer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(d) = self.drainer.take() {
            let _ = d.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::VecSink;

    #[test]
    fn ring_forwards_everything_when_not_full() {
        let inner = VecSink::shared();
        let (ring, drainer) = RingSink::spawn(inner.clone(), 1024);
        for count in 0..100 {
            ring.emit(TelemetryEvent::Dropped { count });
        }
        let stats = drainer.shutdown();
        assert_eq!(stats.forwarded, 100);
        assert_eq!(stats.dropped, 0);
        assert_eq!(inner.take().len(), 100);
    }

    #[test]
    fn full_ring_drops_counts_and_testifies() {
        // Inner sink that blocks until released, so the ring can fill.
        struct Gate {
            rx: std::sync::Mutex<std::sync::mpsc::Receiver<()>>,
            seen: AtomicU64,
        }
        impl TelemetrySink for Gate {
            fn emit(&self, _e: TelemetryEvent) {
                let _ = self.rx.lock().unwrap().recv();
                self.seen.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (tx, rx) = std::sync::mpsc::channel();
        let gate = Arc::new(Gate {
            rx: std::sync::Mutex::new(rx),
            seen: AtomicU64::new(0),
        });
        let (ring, drainer) = RingSink::spawn(gate.clone(), 2);
        // The drainer grabs at most one event before blocking; pushing
        // capacity + 3 guarantees at least one drop.
        for count in 0..5 {
            ring.emit(TelemetryEvent::Dropped { count });
        }
        assert!(ring.dropped() >= 1, "full ring must drop");
        drop(tx); // release the gate
        let stats = drainer.shutdown();
        assert!(stats.dropped >= 1);
        // The trailing Dropped record is forwarded on top of the queued
        // events the drainer managed to deliver.
        assert_eq!(
            gate.seen.load(Ordering::Relaxed),
            stats.forwarded,
            "drainer forwards exactly what it reports"
        );
    }

    #[test]
    fn shutdown_drains_backlog_before_returning() {
        let inner = VecSink::shared();
        let (ring, drainer) = RingSink::spawn(inner.clone(), 64);
        for count in 0..64 {
            ring.emit(TelemetryEvent::Dropped { count });
        }
        let stats = drainer.shutdown();
        assert_eq!(stats.forwarded + stats.dropped, 64);
        assert_eq!(inner.take().len() as u64, stats.forwarded);
    }
}
