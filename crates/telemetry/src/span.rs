//! Per-request distributed tracing: span records and deterministic
//! sampling.
//!
//! A traced request produces one *span tree* over its RPC call graph:
//! a synthetic root "request" span covering `[client send, client
//! delivery]` (no container), plus one hop span per service invocation
//! covering `[rx-hook arrival, response send]`. Every hop span carries
//! the latency decomposition the critical-path analyzer needs —
//! inbound network delay, the connection-pool wait its parent endured
//! to issue the RPC, local service time, the downstream-RPC window —
//! and the frequency/slack state the rx hook observed on entry.
//!
//! Attribution convention: a hop's `conn_wait` is the time the request
//! spent in its **parent's** connection-pool queue waiting for this RPC
//! to be issued. Stamping it on the *callee* span is what lets the
//! analyzer charge threadpool queueing to the container that caused it
//! (the paper's Fig. 5b inversion) instead of the upstream container
//! where the waiting is observed.

use sg_core::ids::{ContainerId, NodeId};
use sg_core::time::{SimDuration, SimTime};

/// One span of a traced request, as recorded by either substrate.
///
/// The root request span has `parent`, `container` and `node` all unset
/// and its whole duration summarized in `downstream`; hop spans set all
/// three and decompose into `net_in + conn_wait` (before `start`) and
/// `service + downstream` (inside `[start, end]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanRecord {
    /// Trace id: the request's injection index (0-based).
    pub trace: u64,
    /// Span id, unique within the run.
    pub span: u64,
    /// Parent span id; `None` for the root request span.
    pub parent: Option<u64>,
    /// Executing container; `None` for the root request span.
    pub container: Option<ContainerId>,
    /// Node of the executing container; `None` for the root request span.
    pub node: Option<NodeId>,
    /// Span open: rx-hook arrival (hops) or client send (root).
    pub start: SimTime,
    /// Span close: response send (hops) or client delivery (root).
    pub end: SimTime,
    /// Network delay from the sender to this hop (before `start`).
    pub net_in: SimDuration,
    /// Time spent queued in the parent's connection pool before this RPC
    /// could be issued (before `start`; the hidden threadpool queue).
    pub conn_wait: SimDuration,
    /// Local CPU work: pre-call plus post-call slices.
    pub service: SimDuration,
    /// The downstream window: from end of pre-call work to start of
    /// post-call work (child pool waits, child RPCs, networks). For the
    /// root request span this is the end-to-end latency.
    pub downstream: SimDuration,
    /// DVFS level the container ran at when the request arrived.
    pub freq_level: u8,
    /// Per-packet slack the rx hook saw on entry (negative = lagging).
    pub slack_ns: i64,
}

impl SpanRecord {
    /// Wall-clock duration of the span.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }

    /// True for the synthetic root request span.
    pub fn is_root(&self) -> bool {
        self.parent.is_none()
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic N-out-of-M trace sampler.
///
/// Uses an exact Bresenham spacing — trace `i` is sampled iff
/// `floor((i+p+1)·n/m) > floor((i+p)·n/m)` with a seed-derived phase
/// `p` — so the realized rate over *any* window of `L` consecutive
/// trace ids is within ±1 of `L·n/m`, and the same seed reproduces the
/// same selection bit-for-bit on every run and substrate.
///
/// # Example
///
/// ```
/// use sg_telemetry::SpanSampler;
///
/// let s = SpanSampler::rate(1, 8, 42);
/// // Exactly 1-in-8 over any span-aligned window, regardless of seed:
/// let sampled = (0..8_000u64).filter(|&t| s.sampled(t)).count();
/// assert_eq!(sampled, 1_000);
/// // Same seed, same selection — reproducible across runs/substrates:
/// assert_eq!(s, SpanSampler::rate(1, 8, 42));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanSampler {
    n: u64,
    m: u64,
    phase: u64,
}

impl SpanSampler {
    /// Sample every request (the default for short runs and tests).
    pub fn all() -> Self {
        SpanSampler {
            n: 1,
            m: 1,
            phase: 0,
        }
    }

    /// Sample `n` out of every `m` requests, with the selection phase
    /// derived from `seed`. Requires `1 <= m` and `n <= m`.
    pub fn rate(n: u64, m: u64, seed: u64) -> Self {
        assert!(m >= 1, "sampling denominator must be at least 1");
        assert!(n <= m, "cannot sample more than m out of m");
        SpanSampler {
            n,
            m,
            phase: splitmix64(seed) % m,
        }
    }

    /// The configured `(n, m)` ratio.
    pub fn ratio(&self) -> (u64, u64) {
        (self.n, self.m)
    }

    /// Should the request with this trace id be traced?
    #[inline]
    pub fn sampled(&self, trace: u64) -> bool {
        if self.n == self.m {
            return true;
        }
        if self.n == 0 {
            return false;
        }
        let i = trace as u128 + self.phase as u128;
        let n = self.n as u128;
        let m = self.m as u128;
        (i + 1) * n / m > i * n / m
    }

    /// Parse a `N/M` ratio string (e.g. `"1/8"`); plain `N` means `N/N`
    /// (sample everything).
    pub fn parse_ratio(s: &str) -> Option<(u64, u64)> {
        match s.split_once('/') {
            Some((n, m)) => {
                let n: u64 = n.trim().parse().ok()?;
                let m: u64 = m.trim().parse().ok()?;
                (m >= 1 && n <= m).then_some((n, m))
            }
            None => {
                let n: u64 = s.trim().parse().ok()?;
                (n >= 1).then_some((n, n))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_samples_everything() {
        let s = SpanSampler::all();
        assert!((0..1000).all(|i| s.sampled(i)));
    }

    #[test]
    fn zero_rate_samples_nothing() {
        let s = SpanSampler::rate(0, 5, 42);
        assert!((0..1000).all(|i| !s.sampled(i)));
    }

    #[test]
    fn rate_is_exact_over_any_window() {
        // ±1 of L·n/m over every window, not just from zero.
        for (n, m) in [(1u64, 7u64), (3, 10), (2, 3), (1, 10_000)] {
            for seed in [0u64, 1, 99] {
                let s = SpanSampler::rate(n, m, seed);
                for window_start in [0u64, 13, 5000] {
                    for len in [100u64, 1001, 10_000] {
                        let count = (window_start..window_start + len)
                            .filter(|&i| s.sampled(i))
                            .count() as f64;
                        let expect = len as f64 * n as f64 / m as f64;
                        assert!(
                            (count - expect).abs() <= 1.0,
                            "{n}/{m} seed {seed}: {count} sampled of {len}, expected {expect}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn same_seed_same_selection() {
        let a = SpanSampler::rate(1, 9, 1234);
        let b = SpanSampler::rate(1, 9, 1234);
        let c = SpanSampler::rate(1, 9, 1235);
        let pick = |s: &SpanSampler| (0..500).filter(|&i| s.sampled(i)).collect::<Vec<_>>();
        assert_eq!(pick(&a), pick(&b));
        // A different seed shifts the phase (not guaranteed for every
        // pair, but these two differ).
        assert_ne!(pick(&a), pick(&c));
    }

    #[test]
    fn ratio_strings_parse() {
        assert_eq!(SpanSampler::parse_ratio("1/8"), Some((1, 8)));
        assert_eq!(SpanSampler::parse_ratio(" 3 / 10 "), Some((3, 10)));
        assert_eq!(SpanSampler::parse_ratio("1"), Some((1, 1)));
        assert_eq!(SpanSampler::parse_ratio("9/8"), None);
        assert_eq!(SpanSampler::parse_ratio("1/0"), None);
        assert_eq!(SpanSampler::parse_ratio("x"), None);
    }

    #[test]
    fn span_duration_and_root() {
        let r = SpanRecord {
            trace: 1,
            span: 2,
            parent: None,
            container: None,
            node: None,
            start: SimTime::from_micros(10),
            end: SimTime::from_micros(25),
            net_in: SimDuration::ZERO,
            conn_wait: SimDuration::ZERO,
            service: SimDuration::ZERO,
            downstream: SimDuration::from_micros(15),
            freq_level: 0,
            slack_ns: 0,
        };
        assert!(r.is_root());
        assert_eq!(r.duration(), SimDuration::from_micros(15));
    }
}
