//! `sg-trace` — summarize and audit a telemetry JSONL trace.
//!
//! Usage: `sg-trace [--json] [--qos MS] [--folded PATH] [--profile]
//! TRACE.jsonl`
//!
//! Reads a trace produced by `sg-loadtest --telemetry` / `--spans` (or
//! any `JsonlSink`) and prints the per-container allocation timeline,
//! the boost→retire latency distribution, the decision-cycle action
//! histogram, and — when the trace carries span records — the
//! critical-path attribution report for deadline-violating requests.
//!
//! Flags:
//!
//! * `--json`     emit one JSON object (`{"decision": …, "spans": …}`)
//!   instead of the human-readable report.
//! * `--qos MS`   classify violations against this deadline in
//!   milliseconds (fractional OK); defaults to self-calibrating on the
//!   p99 of observed request durations.
//! * `--folded PATH` write the attribution histogram as collapsed
//!   stacks (`client;c0;c1;pool_queue 1234`) for inferno / speedscope.
//! * `--profile`  render a self-profile recorded with `sg-loadtest
//!   --profile-out`: phase table (% of wall, count, p50/p99), watermark
//!   summary, and the explicit self-overhead line. `--folded` then
//!   writes the phase stacks instead of the attribution stacks, and the
//!   exit status reflects the profile audit (zero wall, inconsistent
//!   sampling, live coverage below the floor).
//!
//! Any file whose `schema` header names an unknown version is still
//! summarized, with a warning — never silently misparsed.
//!
//! Exit status: 0 on a clean trace, 1 when the clamp/reconciliation
//! audit, the span structural audit, or the profile audit finds a
//! mismatch (unexplained alloc changes, dropped events, malformed span
//! trees), 2 on usage errors. Unparseable lines are counted and
//! reported, not fatal — a trace truncated by a crash should still
//! summarize.

use sg_core::time::SimDuration;
use sg_telemetry::{
    read_trace, ProfileReport, SpanReport, TelemetryEvent, TraceSummary, PROFILE_SCHEMA,
    PROFILE_SCHEMA_V1, PROFILE_SCHEMA_VERSION, SPANS_SCHEMA, TRACE_SCHEMA,
};
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: sg-trace [--json] [--qos MS] [--folded PATH] [--profile] TRACE.jsonl");
    eprintln!("  summarize a telemetry trace recorded with sg-loadtest --telemetry/--spans,");
    eprintln!("  or (with --profile) a self-profile recorded with --profile-out");
    eprintln!("  exits nonzero when the reconciliation, span, or profile audit fails");
    ExitCode::from(2)
}

/// Warn (never fail) on schema headers this binary does not know, so a
/// newer export is flagged instead of silently misparsed.
fn warn_unknown_schemas(events: &[TelemetryEvent]) {
    const KNOWN: [&str; 4] = [
        TRACE_SCHEMA,
        SPANS_SCHEMA,
        PROFILE_SCHEMA,
        PROFILE_SCHEMA_V1,
    ];
    for event in events {
        match event {
            TelemetryEvent::Schema { schema } if !KNOWN.contains(&schema.as_str()) => {
                eprintln!(
                    "sg-trace: warning: unknown schema '{schema}' (this build understands \
                     {TRACE_SCHEMA}, {SPANS_SCHEMA}, {PROFILE_SCHEMA}); fields may be misread"
                );
            }
            TelemetryEvent::ProfileMeta { version, .. } if *version > PROFILE_SCHEMA_VERSION => {
                eprintln!(
                    "sg-trace: warning: profile schema v{version} is newer than this build \
                     (v{PROFILE_SCHEMA_VERSION}); fields may be misread"
                );
            }
            _ => {}
        }
    }
}

/// `--profile` mode: rebuild and render the self-profile report; the
/// exit code is its audit verdict.
fn profile_mode(
    path: &str,
    events: &[TelemetryEvent],
    bad_lines: u64,
    json: bool,
    folded: Option<&str>,
) -> ExitCode {
    let Some(report) = ProfileReport::from_events(events) else {
        eprintln!("sg-trace: no profile records in {path} (record with sg-loadtest --profile-out)");
        return ExitCode::FAILURE;
    };
    if let Some(folded_path) = folded {
        let mut text = report.folded_lines().join("\n");
        text.push('\n');
        if let Err(e) = std::fs::write(folded_path, text) {
            eprintln!("sg-trace: cannot write {folded_path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let audit = report.audit();
    if json {
        let phases: Vec<serde_json::Value> = report
            .phases
            .iter()
            .map(|p| {
                serde_json::json!({
                    "phase": p.phase.name(),
                    "count": p.count,
                    "sampled": p.sampled,
                    "total_ns": p.total_ns,
                    "p50_ns": p.p50_ns,
                    "p99_ns": p.p99_ns,
                    "max_ns": p.max_ns,
                })
            })
            .collect();
        let marks: Vec<serde_json::Value> = report
            .marks
            .iter()
            .map(|(m, v)| serde_json::json!({"mark": m.name(), "value": v}))
            .collect();
        let obj = serde_json::json!({
            "schema": PROFILE_SCHEMA,
            "version": report.version,
            "substrate": report.substrate,
            "wall_ns": report.wall_ns,
            "phases": phases,
            "marks": marks,
            "audit": audit.as_ref().err().cloned().unwrap_or_default(),
            "bad_lines": bad_lines,
        });
        println!("{obj}");
    } else {
        print!("{}", report.render());
        if let Err(findings) = &audit {
            for finding in findings {
                eprintln!("sg-trace: AUDIT: {finding}");
            }
        }
    }
    if bad_lines > 0 {
        eprintln!("sg-trace: skipped {bad_lines} unparseable line(s)");
    }
    if audit.is_ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut profile = false;
    let mut qos: Option<SimDuration> = None;
    let mut folded: Option<String> = None;
    let mut path: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => return usage(),
            "--json" => json = true,
            "--profile" => profile = true,
            "--qos" => {
                i += 1;
                let Some(ms) = args.get(i).and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("sg-trace: --qos needs a millisecond value");
                    return usage();
                };
                if ms.is_nan() || ms <= 0.0 {
                    eprintln!("sg-trace: --qos must be positive");
                    return usage();
                }
                qos = Some(SimDuration::from_nanos((ms * 1_000_000.0) as u64));
            }
            "--folded" => {
                i += 1;
                let Some(p) = args.get(i) else {
                    eprintln!("sg-trace: --folded needs a path");
                    return usage();
                };
                folded = Some(p.clone());
            }
            flag if flag.starts_with("--") => {
                eprintln!("sg-trace: unknown flag {flag}");
                return usage();
            }
            p => {
                if path.replace(p.to_string()).is_some() {
                    eprintln!("sg-trace: more than one trace file given");
                    return usage();
                }
            }
        }
        i += 1;
    }
    let Some(path) = path else {
        return usage();
    };

    let trace = match read_trace(Path::new(&path)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("sg-trace: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let bad_lines = trace.bad_lines;
    warn_unknown_schemas(&trace.events);

    if profile {
        return profile_mode(&path, &trace.events, bad_lines, json, folded.as_deref());
    }

    let summary = TraceSummary::from_events(trace.events.iter().cloned());
    let report = SpanReport::from_events(trace.events, qos);

    if let Some(folded_path) = &folded {
        if let Err(e) = std::fs::write(folded_path, report.folded_lines()) {
            eprintln!("sg-trace: cannot write {folded_path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let decision_audit = summary.audit();
    let span_audit = report.audit();

    if json {
        let spans_json = if report.spans > 0 {
            report.to_json()
        } else {
            serde_json::Value::Null
        };
        let obj = serde_json::json!({
            "decision": summary.to_json(),
            "spans": spans_json,
            "bad_lines": bad_lines,
        });
        println!("{obj}");
    } else {
        print!("{}", summary.render());
        if report.spans > 0 {
            print!("{}", report.render());
        }
        for finding in decision_audit.iter().chain(span_audit.iter()) {
            eprintln!("sg-trace: AUDIT: {finding}");
        }
    }
    if bad_lines > 0 {
        eprintln!("sg-trace: skipped {bad_lines} unparseable line(s)");
    }

    if decision_audit.is_empty() && span_audit.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
