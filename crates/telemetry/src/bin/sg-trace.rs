//! `sg-trace` — summarize, audit, and watch telemetry JSONL streams.
//!
//! Usage:
//!
//! * `sg-trace [--json] [--qos MS] [--folded PATH] [--profile]
//!   TRACE.jsonl` — summarize a recorded trace.
//! * `sg-trace watch [--json] [--tail] [--qos MS] [--objective PCT]
//!   [--topk N] [--idle-exit SECS] METRICS.jsonl` — fold a
//!   metrics/span stream into a rolling cluster view: merged latency
//!   digest percentiles, SLO burn rates with fast/slow alerts, and the
//!   heavy-hitter loss table (see `sg_telemetry::watch`).
//!
//! Reads traces produced by `sg-loadtest --telemetry` / `--spans` /
//! `--metrics` (or any `JsonlSink`) and prints the per-container
//! allocation timeline, the boost→retire latency distribution, the
//! decision-cycle action histogram, and — when the trace carries span
//! records — the critical-path attribution report for deadline-violating
//! requests.
//!
//! Flags (summarize mode):
//!
//! * `--json`     emit one JSON object (`{"decision": …, "spans": …}`)
//!   instead of the human-readable report.
//! * `--qos MS`   classify violations against this deadline in
//!   milliseconds (fractional OK); defaults to self-calibrating on the
//!   p99 of observed request durations.
//! * `--folded PATH` write the attribution histogram as collapsed
//!   stacks (`client;c0;c1;pool_queue 1234`) for inferno / speedscope.
//! * `--profile`  render a self-profile recorded with `sg-loadtest
//!   --profile-out`: phase table (% of wall, count, p50/p99), watermark
//!   summary, and the explicit self-overhead line. `--folded` then
//!   writes the phase stacks instead of the attribution stacks, and the
//!   exit status reflects the profile audit (zero wall, inconsistent
//!   sampling, live coverage below the floor).
//!
//! Flags (watch mode):
//!
//! * `--tail`     follow the file as it is appended (`tail -f`
//!   semantics), re-rendering when new events arrive.
//! * `--objective PCT` the SLO objective (default 99.9).
//! * `--topk N`   heavy-hitter rows to print (default 8).
//! * `--idle-exit SECS` with `--tail`: exit once no new data has
//!   arrived for this long (CI uses this; default is to follow
//!   forever).
//!
//! Input is **streamed** line-by-line in both modes — a multi-gigabyte
//! `cluster_scale` export folds in constant memory (span records and
//! profile events, which need whole-set analysis, are the only events
//! retained).
//!
//! Any file whose `schema` header names an unknown version is still
//! summarized, with a warning — never silently misparsed.
//!
//! Exit status: 0 on a clean trace, 1 when the clamp/reconciliation
//! audit, the span structural audit, the profile audit, or the watch
//! audit (no aggregation records, cumulative snapshots regressing)
//! finds a mismatch, 2 on usage errors. Unparseable lines are counted
//! and reported, not fatal — a trace truncated by a crash should still
//! summarize.

use sg_core::time::SimDuration;
use sg_telemetry::{
    stream_trace, EventFamily, ProfileReport, SpanRecord, SpanReport, SummaryBuilder, TailStream,
    TelemetryEvent, WatchConfig, Watcher, PROFILE_SCHEMA, PROFILE_SCHEMA_V1,
    PROFILE_SCHEMA_VERSION, SPANS_SCHEMA, TRACE_SCHEMA,
};
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: sg-trace [--json] [--qos MS] [--folded PATH] [--profile] TRACE.jsonl");
    eprintln!("       sg-trace watch [--json] [--tail] [--qos MS] [--objective PCT] [--topk N]");
    eprintln!("                      [--idle-exit SECS] METRICS.jsonl");
    eprintln!("  summarize a telemetry trace recorded with sg-loadtest --telemetry/--spans,");
    eprintln!("  render a self-profile (--profile), or watch a metrics/span stream (watch):");
    eprintln!("  rolling latency digests, SLO burn rates, and heavy-hitter loss tables");
    eprintln!("  exits nonzero when the reconciliation, span, profile, or watch audit fails");
    ExitCode::from(2)
}

/// Warn (never fail) on schema headers this binary does not know, so a
/// newer export is flagged instead of silently misparsed.
fn warn_unknown_schema(event: &TelemetryEvent) {
    const KNOWN: [&str; 4] = [
        TRACE_SCHEMA,
        SPANS_SCHEMA,
        PROFILE_SCHEMA,
        PROFILE_SCHEMA_V1,
    ];
    match event {
        TelemetryEvent::Schema { schema } if !KNOWN.contains(&schema.as_str()) => {
            eprintln!(
                "sg-trace: warning: unknown schema '{schema}' (this build understands \
                 {TRACE_SCHEMA}, {SPANS_SCHEMA}, {PROFILE_SCHEMA}); fields may be misread"
            );
        }
        TelemetryEvent::ProfileMeta { version, .. } if *version > PROFILE_SCHEMA_VERSION => {
            eprintln!(
                "sg-trace: warning: profile schema v{version} is newer than this build \
                 (v{PROFILE_SCHEMA_VERSION}); fields may be misread"
            );
        }
        _ => {}
    }
}

/// `--profile` mode: rebuild and render the self-profile report; the
/// exit code is its audit verdict.
fn profile_mode(
    path: &str,
    events: &[TelemetryEvent],
    bad_lines: u64,
    json: bool,
    folded: Option<&str>,
) -> ExitCode {
    let Some(report) = ProfileReport::from_events(events) else {
        eprintln!("sg-trace: no profile records in {path} (record with sg-loadtest --profile-out)");
        return ExitCode::FAILURE;
    };
    if let Some(folded_path) = folded {
        let mut text = report.folded_lines().join("\n");
        text.push('\n');
        if let Err(e) = std::fs::write(folded_path, text) {
            eprintln!("sg-trace: cannot write {folded_path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let audit = report.audit();
    if json {
        let phases: Vec<serde_json::Value> = report
            .phases
            .iter()
            .map(|p| {
                serde_json::json!({
                    "phase": p.phase.name(),
                    "count": p.count,
                    "sampled": p.sampled,
                    "total_ns": p.total_ns,
                    "p50_ns": p.p50_ns,
                    "p99_ns": p.p99_ns,
                    "max_ns": p.max_ns,
                })
            })
            .collect();
        let marks: Vec<serde_json::Value> = report
            .marks
            .iter()
            .map(|(m, v)| serde_json::json!({"mark": m.name(), "value": v}))
            .collect();
        let obj = serde_json::json!({
            "schema": PROFILE_SCHEMA,
            "version": report.version,
            "substrate": report.substrate,
            "wall_ns": report.wall_ns,
            "phases": phases,
            "marks": marks,
            "audit": audit.as_ref().err().cloned().unwrap_or_default(),
            "bad_lines": bad_lines,
        });
        println!("{obj}");
    } else {
        print!("{}", report.render());
        if let Err(findings) = &audit {
            for finding in findings {
                eprintln!("sg-trace: AUDIT: {finding}");
            }
        }
    }
    if bad_lines > 0 {
        eprintln!("sg-trace: skipped {bad_lines} unparseable line(s)");
    }
    if audit.is_ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn parse_qos_ms(value: Option<&String>) -> Result<SimDuration, ExitCode> {
    let Some(ms) = value.and_then(|v| v.parse::<f64>().ok()) else {
        eprintln!("sg-trace: --qos needs a millisecond value");
        return Err(usage());
    };
    if ms.is_nan() || ms <= 0.0 {
        eprintln!("sg-trace: --qos must be positive");
        return Err(usage());
    }
    Ok(SimDuration::from_nanos((ms * 1_000_000.0) as u64))
}

/// `watch` subcommand: fold a metrics/span stream into a rolling
/// cluster view. Exit code is the watch audit verdict.
fn watch_mode(args: &[String]) -> ExitCode {
    let mut cfg = WatchConfig::default();
    let mut json = false;
    let mut tail = false;
    let mut idle_exit: Option<std::time::Duration> = None;
    let mut path: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => return usage(),
            "--json" => json = true,
            "--tail" => tail = true,
            "--qos" => {
                i += 1;
                match parse_qos_ms(args.get(i)) {
                    Ok(q) => cfg.qos = Some(q),
                    Err(code) => return code,
                }
            }
            "--objective" => {
                i += 1;
                let Some(pct) = args.get(i).and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("sg-trace: --objective needs a percentage");
                    return usage();
                };
                if !(0.0..100.0).contains(&pct) {
                    eprintln!("sg-trace: --objective must be in [0, 100)");
                    return usage();
                }
                cfg.objective_pct = pct;
            }
            "--topk" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("sg-trace: --topk needs a count");
                    return usage();
                };
                cfg.topk = n.max(1);
            }
            "--idle-exit" => {
                i += 1;
                let Some(secs) = args.get(i).and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("sg-trace: --idle-exit needs seconds");
                    return usage();
                };
                idle_exit = Some(std::time::Duration::from_secs_f64(secs.max(0.0)));
            }
            flag if flag.starts_with("--") => {
                eprintln!("sg-trace: unknown flag {flag}");
                return usage();
            }
            p => {
                if path.replace(p.to_string()).is_some() {
                    eprintln!("sg-trace: more than one metrics file given");
                    return usage();
                }
            }
        }
        i += 1;
    }
    let Some(path) = path else {
        return usage();
    };

    let mut watcher = Watcher::new(cfg);
    let bad_lines;
    if tail {
        let mut stream = match TailStream::open(Path::new(&path)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("sg-trace: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let poll_every = std::time::Duration::from_millis(200);
        let mut idle = std::time::Duration::ZERO;
        loop {
            let events = match stream.poll() {
                Ok(events) => events,
                Err(e) => {
                    eprintln!("sg-trace: read error on {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if events.is_empty() {
                idle += poll_every;
                if idle_exit.is_some_and(|limit| idle >= limit) {
                    break;
                }
            } else {
                idle = std::time::Duration::ZERO;
                for event in events {
                    warn_unknown_schema(&event);
                    watcher.push(event);
                }
                if !json {
                    println!(
                        "--- sg-trace watch @ {} ms ---",
                        watcher.last_at.as_nanos() / 1_000_000
                    );
                    print!("{}", watcher.render());
                }
            }
            std::thread::sleep(poll_every);
        }
        bad_lines = stream.bad_lines;
    } else {
        let stream = match stream_trace(Path::new(&path)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("sg-trace: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        bad_lines = match stream.for_each(|event| {
            warn_unknown_schema(&event);
            watcher.push(event);
        }) {
            Ok(bad) => bad,
            Err(e) => {
                eprintln!("sg-trace: read error on {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
    }

    let audit = watcher.audit();
    if json {
        println!("{}", watcher.to_json());
    } else {
        print!("{}", watcher.render());
        for finding in &audit {
            eprintln!("sg-trace: AUDIT: {finding}");
        }
    }
    if bad_lines > 0 {
        eprintln!("sg-trace: skipped {bad_lines} unparseable line(s)");
    }
    if audit.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("watch") {
        return watch_mode(&args[1..]);
    }
    let mut json = false;
    let mut profile = false;
    let mut qos: Option<SimDuration> = None;
    let mut folded: Option<String> = None;
    let mut path: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => return usage(),
            "--json" => json = true,
            "--profile" => profile = true,
            "--qos" => {
                i += 1;
                match parse_qos_ms(args.get(i)) {
                    Ok(q) => qos = Some(q),
                    Err(code) => return code,
                }
            }
            "--folded" => {
                i += 1;
                let Some(p) = args.get(i) else {
                    eprintln!("sg-trace: --folded needs a path");
                    return usage();
                };
                folded = Some(p.clone());
            }
            flag if flag.starts_with("--") => {
                eprintln!("sg-trace: unknown flag {flag}");
                return usage();
            }
            p => {
                if path.replace(p.to_string()).is_some() {
                    eprintln!("sg-trace: more than one trace file given");
                    return usage();
                }
            }
        }
        i += 1;
    }
    let Some(path) = path else {
        return usage();
    };

    // Stream the file once, folding the decision summary incrementally.
    // Only span records (whole-set critical-path analysis) and profile
    // events (whole-set phase accounting) are retained in memory.
    let stream = match stream_trace(Path::new(&path)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sg-trace: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut builder = SummaryBuilder::new();
    let mut spans: Vec<SpanRecord> = Vec::new();
    let mut profile_events: Vec<TelemetryEvent> = Vec::new();
    let bad_lines = match stream.for_each(|event| {
        warn_unknown_schema(&event);
        if let TelemetryEvent::Span(record) = &event {
            spans.push(*record);
        }
        if profile && event.family() == EventFamily::Profile {
            profile_events.push(event.clone());
        }
        builder.push(event);
    }) {
        Ok(bad) => bad,
        Err(e) => {
            eprintln!("sg-trace: read error on {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    if profile {
        return profile_mode(&path, &profile_events, bad_lines, json, folded.as_deref());
    }

    let summary = builder.finish();
    let report = SpanReport::from_records(&spans, qos);

    if let Some(folded_path) = &folded {
        if let Err(e) = std::fs::write(folded_path, report.folded_lines()) {
            eprintln!("sg-trace: cannot write {folded_path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let decision_audit = summary.audit();
    let span_audit = report.audit();

    if json {
        let spans_json = if report.spans > 0 {
            report.to_json()
        } else {
            serde_json::Value::Null
        };
        let obj = serde_json::json!({
            "decision": summary.to_json(),
            "spans": spans_json,
            "bad_lines": bad_lines,
        });
        println!("{obj}");
    } else {
        print!("{}", summary.render());
        if report.spans > 0 {
            print!("{}", report.render());
        }
        for finding in decision_audit.iter().chain(span_audit.iter()) {
            eprintln!("sg-trace: AUDIT: {finding}");
        }
    }
    if bad_lines > 0 {
        eprintln!("sg-trace: skipped {bad_lines} unparseable line(s)");
    }

    if decision_audit.is_empty() && span_audit.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
