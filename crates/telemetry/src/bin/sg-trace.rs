//! `sg-trace` — summarize a telemetry JSONL trace.
//!
//! Usage: `sg-trace TRACE.jsonl`
//!
//! Reads a trace produced by `sg-loadtest --telemetry` (or any
//! `JsonlSink`) and prints the per-container allocation timeline, the
//! boost→retire latency distribution, the decision-cycle action
//! histogram, and the clamp/rejection audit. Unparseable lines are
//! counted and reported, not fatal — a trace truncated by a crash should
//! still summarize.

use sg_telemetry::{TelemetryEvent, TraceSummary};
use std::io::{BufRead, BufReader};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let path = match args.next() {
        Some(p) if p != "--help" && p != "-h" => p,
        _ => {
            eprintln!("usage: sg-trace TRACE.jsonl");
            eprintln!("  summarize a telemetry trace recorded with sg-loadtest --telemetry");
            return ExitCode::from(2);
        }
    };

    let file = match std::fs::File::open(&path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("sg-trace: cannot open {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut events = Vec::new();
    let mut bad_lines = 0u64;
    for line in BufReader::new(file).lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("sg-trace: read error: {e}");
                return ExitCode::FAILURE;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        match TelemetryEvent::from_json_line(&line) {
            Ok(event) => events.push(event),
            Err(_) => bad_lines += 1,
        }
    }

    let summary = TraceSummary::from_events(events);
    print!("{}", summary.render());
    if bad_lines > 0 {
        eprintln!("sg-trace: skipped {bad_lines} unparseable line(s)");
    }
    ExitCode::SUCCESS
}
