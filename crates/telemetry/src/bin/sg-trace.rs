//! `sg-trace` — summarize and audit a telemetry JSONL trace.
//!
//! Usage: `sg-trace [--json] [--qos MS] [--folded PATH] TRACE.jsonl`
//!
//! Reads a trace produced by `sg-loadtest --telemetry` / `--spans` (or
//! any `JsonlSink`) and prints the per-container allocation timeline,
//! the boost→retire latency distribution, the decision-cycle action
//! histogram, and — when the trace carries span records — the
//! critical-path attribution report for deadline-violating requests.
//!
//! Flags:
//!
//! * `--json`     emit one JSON object (`{"decision": …, "spans": …}`)
//!   instead of the human-readable report.
//! * `--qos MS`   classify violations against this deadline in
//!   milliseconds (fractional OK); defaults to self-calibrating on the
//!   p99 of observed request durations.
//! * `--folded PATH` write the attribution histogram as collapsed
//!   stacks (`client;c0;c1;pool_queue 1234`) for inferno / speedscope.
//!
//! Exit status: 0 on a clean trace, 1 when the clamp/reconciliation
//! audit or the span structural audit finds a mismatch (unexplained
//! alloc changes, dropped events, malformed span trees), 2 on usage
//! errors. Unparseable lines are counted and reported, not fatal — a
//! trace truncated by a crash should still summarize.

use sg_core::time::SimDuration;
use sg_telemetry::{read_trace, SpanReport, TraceSummary};
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: sg-trace [--json] [--qos MS] [--folded PATH] TRACE.jsonl");
    eprintln!("  summarize a telemetry trace recorded with sg-loadtest --telemetry/--spans");
    eprintln!("  exits nonzero when the reconciliation or span audit fails");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut qos: Option<SimDuration> = None;
    let mut folded: Option<String> = None;
    let mut path: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => return usage(),
            "--json" => json = true,
            "--qos" => {
                i += 1;
                let Some(ms) = args.get(i).and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("sg-trace: --qos needs a millisecond value");
                    return usage();
                };
                if ms.is_nan() || ms <= 0.0 {
                    eprintln!("sg-trace: --qos must be positive");
                    return usage();
                }
                qos = Some(SimDuration::from_nanos((ms * 1_000_000.0) as u64));
            }
            "--folded" => {
                i += 1;
                let Some(p) = args.get(i) else {
                    eprintln!("sg-trace: --folded needs a path");
                    return usage();
                };
                folded = Some(p.clone());
            }
            flag if flag.starts_with("--") => {
                eprintln!("sg-trace: unknown flag {flag}");
                return usage();
            }
            p => {
                if path.replace(p.to_string()).is_some() {
                    eprintln!("sg-trace: more than one trace file given");
                    return usage();
                }
            }
        }
        i += 1;
    }
    let Some(path) = path else {
        return usage();
    };

    let trace = match read_trace(Path::new(&path)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("sg-trace: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let bad_lines = trace.bad_lines;

    let summary = TraceSummary::from_events(trace.events.iter().cloned());
    let report = SpanReport::from_events(trace.events, qos);

    if let Some(folded_path) = &folded {
        if let Err(e) = std::fs::write(folded_path, report.folded_lines()) {
            eprintln!("sg-trace: cannot write {folded_path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let decision_audit = summary.audit();
    let span_audit = report.audit();

    if json {
        let spans_json = if report.spans > 0 {
            report.to_json()
        } else {
            serde_json::Value::Null
        };
        let obj = serde_json::json!({
            "decision": summary.to_json(),
            "spans": spans_json,
            "bad_lines": bad_lines,
        });
        println!("{obj}");
    } else {
        print!("{}", summary.render());
        if report.spans > 0 {
            print!("{}", report.render());
        }
        for finding in decision_audit.iter().chain(span_audit.iter()) {
            eprintln!("sg-trace: AUDIT: {finding}");
        }
    }
    if bad_lines > 0 {
        eprintln!("sg-trace: skipped {bad_lines} unparseable line(s)");
    }

    if decision_audit.is_empty() && span_audit.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
