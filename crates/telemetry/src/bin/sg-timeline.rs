//! `sg-timeline` — render and reconcile a metrics JSONL timeline.
//!
//! Usage: `sg-timeline [--trace PATH] [--reconcile] [--svg PATH]
//! [--json] [--grace-ms MS] METRICS.jsonl`
//!
//! Reads a metrics time-series recorded with `sg-loadtest --metrics`
//! (either backend) and prints per-container timeline tables plus ASCII
//! strip charts — the Fig. 7/8 view of allocation and frequency around a
//! surge.
//!
//! Flags:
//!
//! * `--trace PATH` also load the decision trace recorded alongside the
//!   metrics (same run, `--telemetry PATH`).
//! * `--reconcile` (requires `--trace`) cross-check the two streams:
//!   every `alloc` event must be visible as a step in the matching
//!   `cores`/`freq_level` gauge series, every `fr_boost` event as a step
//!   in the cumulative `fr_boosts` counter. Exits 1 on any mismatch or
//!   on testified drops in either stream.
//! * `--svg PATH` write an SVG strip chart (cores + DVFS level per
//!   container over time).
//! * `--json` machine-readable summary instead of tables.
//! * `--grace-ms MS` supersede/boundary grace window for `--reconcile`;
//!   defaults to the measured sampling interval (min 1 ms).
//!
//! Exit status: 0 clean, 1 reconcile failure, 2 usage errors.

use sg_core::time::SimDuration;
use sg_telemetry::{
    read_trace, stream_trace, timeline, TelemetryEvent, TimelineSet, METRICS_SCHEMA_VERSION,
    PROFILE_SCHEMA, PROFILE_SCHEMA_V1, SPANS_SCHEMA, TRACE_SCHEMA,
};
use std::path::Path;
use std::process::ExitCode;

/// Warn (never fail) on schema headers this binary does not know, so a
/// newer export is flagged instead of silently misparsed.
fn warn_unknown_schema(event: &TelemetryEvent) {
    const KNOWN: [&str; 4] = [
        TRACE_SCHEMA,
        SPANS_SCHEMA,
        PROFILE_SCHEMA,
        PROFILE_SCHEMA_V1,
    ];
    match event {
        TelemetryEvent::Schema { schema } if !KNOWN.contains(&schema.as_str()) => {
            eprintln!("sg-timeline: warning: unknown schema '{schema}'; fields may be misread");
        }
        TelemetryEvent::MetricsMeta { version, .. } if *version > METRICS_SCHEMA_VERSION => {
            eprintln!(
                "sg-timeline: warning: metrics schema v{version} is newer than this build \
                 (v{METRICS_SCHEMA_VERSION}); fields may be misread"
            );
        }
        _ => {}
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: sg-timeline [--trace PATH] [--reconcile] [--svg PATH] [--json] \
         [--grace-ms MS] METRICS.jsonl"
    );
    eprintln!("  render a metrics timeline recorded with sg-loadtest --metrics;");
    eprintln!("  with --trace + --reconcile, cross-check gauges against the decision trace");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut trace_path: Option<String> = None;
    let mut svg_path: Option<String> = None;
    let mut do_reconcile = false;
    let mut json = false;
    let mut grace_ms: Option<f64> = None;
    let mut metrics_path: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => return usage(),
            "--json" => json = true,
            "--reconcile" => do_reconcile = true,
            "--trace" => {
                i += 1;
                let Some(p) = args.get(i) else {
                    eprintln!("sg-timeline: --trace needs a path");
                    return usage();
                };
                trace_path = Some(p.clone());
            }
            "--svg" => {
                i += 1;
                let Some(p) = args.get(i) else {
                    eprintln!("sg-timeline: --svg needs a path");
                    return usage();
                };
                svg_path = Some(p.clone());
            }
            "--grace-ms" => {
                i += 1;
                let Some(ms) = args.get(i).and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("sg-timeline: --grace-ms needs a millisecond value");
                    return usage();
                };
                if ms.is_nan() || ms < 0.0 {
                    eprintln!("sg-timeline: --grace-ms must be non-negative");
                    return usage();
                }
                grace_ms = Some(ms);
            }
            flag if flag.starts_with("--") => {
                eprintln!("sg-timeline: unknown flag {flag}");
                return usage();
            }
            p => {
                if metrics_path.replace(p.to_string()).is_some() {
                    eprintln!("sg-timeline: more than one metrics file given");
                    return usage();
                }
            }
        }
        i += 1;
    }
    let Some(metrics_path) = metrics_path else {
        return usage();
    };
    if do_reconcile && trace_path.is_none() {
        eprintln!("sg-timeline: --reconcile requires --trace");
        return usage();
    }

    // The metrics file is the large one on a cluster-scale run: stream
    // it line-by-line, folding samples into the timeline incrementally.
    let metrics_stream = match stream_trace(Path::new(&metrics_path)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sg-timeline: cannot read {metrics_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut set = TimelineSet::default();
    let metrics_bad_lines = match metrics_stream.for_each(|event| {
        warn_unknown_schema(&event);
        set.push(&event);
    }) {
        Ok(bad) => bad,
        Err(e) => {
            eprintln!("sg-timeline: read error on {metrics_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    set.seal();

    // The decision trace (reconcile cross-check) is replayed as a whole
    // event set and stays buffered.
    let trace = match &trace_path {
        Some(p) => match read_trace(Path::new(p)) {
            Ok(t) => Some(t),
            Err(e) => {
                eprintln!("sg-timeline: cannot read {p}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    if let Some(t) = &trace {
        for event in &t.events {
            warn_unknown_schema(event);
        }
    }

    // Grace: explicit flag, else the measured sampling interval (the
    // natural boundary-race window), floored at 1 ms.
    let grace = match grace_ms {
        Some(ms) => SimDuration::from_nanos((ms * 1_000_000.0) as u64),
        None => set
            .median_interval()
            .unwrap_or(SimDuration::from_millis(1))
            .max(SimDuration::from_millis(1)),
    };

    let report = trace
        .as_ref()
        .filter(|_| do_reconcile)
        .map(|t| timeline::reconcile(&set, &t.events, grace));

    if let Some(svg) = &svg_path {
        if let Err(e) = std::fs::write(svg, set.render_svg()) {
            eprintln!("sg-timeline: cannot write {svg}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if json {
        let reconcile_json = match &report {
            Some(r) => serde_json::json!({
                "passed": r.passed(),
                "checked": r.checked,
                "superseded": r.superseded,
                "tail_skipped": r.tail_skipped,
                "metrics_dropped": r.metrics_dropped,
                "trace_dropped": r.trace_dropped,
                "mismatches": r.mismatches.clone(),
            }),
            None => serde_json::Value::Null,
        };
        let obj = serde_json::json!({
            "schema_version": set.version,
            "interval_ns": set.interval_ns,
            "samples": set.samples,
            "containers": set.containers(),
            "dropped": set.dropped,
            "bad_lines": metrics_bad_lines,
            "reconcile": reconcile_json,
        });
        println!("{obj}");
    } else {
        println!(
            "metrics timeline: {} sample(s), {} container(s), schema v{}",
            set.samples,
            set.containers().len(),
            set.version.map_or("?".to_string(), |v| v.to_string()),
        );
        if set.dropped > 0 {
            println!("  !! {} metrics sample(s) dropped in-flight", set.dropped);
        }
        print!("{}", set.render_tables(20));
        println!();
        print!("{}", set.render_ascii(72));
        if let Some(r) = &report {
            print!("{}", r.render());
            println!("reconcile grace: {:.1} ms", grace.as_nanos() as f64 / 1e6);
        }
    }
    if metrics_bad_lines > 0 {
        eprintln!("sg-timeline: skipped {metrics_bad_lines} unparseable line(s)");
    }

    match &report {
        Some(r) if !r.passed() => ExitCode::FAILURE,
        _ => ExitCode::SUCCESS,
    }
}
