//! The typed event taxonomy and its JSONL encoding.
//!
//! Every event is one self-describing JSON object per line, keyed by a
//! `"type"` discriminator, so traces stream, concatenate, and survive
//! partial writes. Encoding and decoding round-trip exactly — `sg-trace`
//! reads back what the sinks wrote.

use crate::agg::{LatencyDigest, TopKEntry};
use crate::metrics::{MetricId, MetricSample};
use crate::profile::{ProfileMark, ProfilePhase};
use crate::span::SpanRecord;
use serde_json::{json, Value};
use sg_core::ids::{ContainerId, NodeId};
use sg_core::time::{SimDuration, SimTime};

/// Schema identifier stamped as line 1 of decision-trace JSONL exports
/// (the `sg-bench/v1` naming convention).
pub const TRACE_SCHEMA: &str = "sg-trace/v1";
/// Schema identifier stamped as line 1 of span-trace JSONL exports.
pub const SPANS_SCHEMA: &str = "sg-spans/v1";

/// The per-stream trace an event belongs to. The live relay funnels all
/// three families through one ring; drops are counted and testified per
/// family so each output file accounts for its own losses only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventFamily {
    /// Decision-trace events (actions, allocs, boosts, windows,
    /// scoreboards).
    Decision,
    /// Per-request span records.
    Span,
    /// Metrics time-series samples.
    Metrics,
    /// Runtime self-profile records (phase totals, watermarks).
    Profile,
}

impl EventFamily {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            EventFamily::Decision => "decision",
            EventFamily::Span => "span",
            EventFamily::Metrics => "metrics",
            EventFamily::Profile => "profile",
        }
    }

    fn from_wire(name: &str) -> Option<EventFamily> {
        Some(match name {
            "decision" => EventFamily::Decision,
            "span" => EventFamily::Span,
            "metrics" => EventFamily::Metrics,
            "profile" => EventFamily::Profile,
            _ => return None,
        })
    }
}

/// What a control action asked for (the action's single argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionKind {
    /// `SetCores { cores }`.
    SetCores {
        /// Absolute core count requested.
        cores: u32,
    },
    /// `SetFreq { level }`.
    SetFreq {
        /// DVFS level requested.
        level: u8,
    },
    /// `SetBandwidth { units }` (tenths of a core-equivalent; 0 uncaps).
    SetBandwidth {
        /// Cap requested.
        units: u32,
    },
    /// `SetEgressHint { hops }` (0 clears).
    SetEgressHint {
        /// Hop count requested.
        hops: u8,
    },
    /// `SetReplicas { replicas }` (absolute replica count for the
    /// target's service group).
    SetReplicas {
        /// Replica count requested.
        replicas: u32,
    },
}

impl ActionKind {
    /// Stable wire name of the kind.
    pub fn name(self) -> &'static str {
        match self {
            ActionKind::SetCores { .. } => "set_cores",
            ActionKind::SetFreq { .. } => "set_freq",
            ActionKind::SetBandwidth { .. } => "set_bandwidth",
            ActionKind::SetEgressHint { .. } => "set_egress_hint",
            ActionKind::SetReplicas { .. } => "set_replicas",
        }
    }

    /// The action's argument as a plain number (for the wire format).
    pub fn arg(self) -> u32 {
        match self {
            ActionKind::SetCores { cores } => cores,
            ActionKind::SetFreq { level } => level as u32,
            ActionKind::SetBandwidth { units } => units,
            ActionKind::SetEgressHint { hops } => hops as u32,
            ActionKind::SetReplicas { replicas } => replicas,
        }
    }

    fn from_wire(name: &str, arg: u32) -> Option<ActionKind> {
        Some(match name {
            "set_cores" => ActionKind::SetCores { cores: arg },
            "set_freq" => ActionKind::SetFreq { level: arg as u8 },
            "set_bandwidth" => ActionKind::SetBandwidth { units: arg },
            "set_egress_hint" => ActionKind::SetEgressHint { hops: arg as u8 },
            "set_replicas" => ActionKind::SetReplicas { replicas: arg },
            _ => return None,
        })
    }
}

/// Which path produced an action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionOrigin {
    /// The controller's decision cycle (`on_tick`).
    Tick,
    /// The per-packet rx hook (`on_packet` — the FirstResponder site).
    PacketHook,
}

impl ActionOrigin {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            ActionOrigin::Tick => "tick",
            ActionOrigin::PacketHook => "packet_hook",
        }
    }

    fn from_wire(name: &str) -> Option<ActionOrigin> {
        Some(match name {
            "tick" => ActionOrigin::Tick,
            "packet_hook" => ActionOrigin::PacketHook,
            _ => return None,
        })
    }
}

/// What the harness's enforcement layer did with an action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionOutcome {
    /// Applied as requested (possibly a no-op if already at the target).
    Applied,
    /// Accepted, but takes effect after the configured apply delay (the
    /// MSR-write latency on `SetFreq`).
    Deferred,
    /// Partially honoured: clamped to min/max bounds or the node's spare
    /// core budget.
    Clamped,
    /// Refused outright: the acting node does not own the target
    /// container (decentralization violation).
    RejectedCrossNode,
}

impl ActionOutcome {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            ActionOutcome::Applied => "applied",
            ActionOutcome::Deferred => "deferred",
            ActionOutcome::Clamped => "clamped",
            ActionOutcome::RejectedCrossNode => "rejected_cross_node",
        }
    }

    fn from_wire(name: &str) -> Option<ActionOutcome> {
        Some(match name {
            "applied" => ActionOutcome::Applied,
            "deferred" => ActionOutcome::Deferred,
            "clamped" => ActionOutcome::Clamped,
            "rejected_cross_node" => ActionOutcome::RejectedCrossNode,
            _ => return None,
        })
    }
}

/// A replica's lifecycle transition (see
/// [`TelemetryEvent::ReplicaLifecycle`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaPhase {
    /// The replica slot was activated and now accepts load-balanced
    /// traffic.
    Spawned,
    /// The replica stopped taking new work and is finishing what it has.
    Draining,
    /// The replica finished draining; its cores are released and its
    /// allocation is metered at zero.
    Retired,
}

impl ReplicaPhase {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            ReplicaPhase::Spawned => "spawned",
            ReplicaPhase::Draining => "draining",
            ReplicaPhase::Retired => "retired",
        }
    }

    fn from_wire(name: &str) -> Option<ReplicaPhase> {
        Some(match name {
            "spawned" => ReplicaPhase::Spawned,
            "draining" => ReplicaPhase::Draining,
            "retired" => ReplicaPhase::Retired,
            _ => return None,
        })
    }
}

/// One Escalator action with the score that motivated it and a
/// human-readable reason.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredAction {
    /// Target container.
    pub container: ContainerId,
    /// What was asked.
    pub kind: ActionKind,
    /// Why (e.g. `"upscale: score 3, sensitivity-ranked"`).
    pub reason: String,
}

/// One structured observability event.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryEvent {
    /// A controller action passing through the harness's enforcement
    /// layer (ownership check, constraint clamp, apply delay).
    Action {
        /// When the harness processed the action.
        at: SimTime,
        /// The node whose controller emitted it.
        node: NodeId,
        /// The targeted container.
        container: ContainerId,
        /// Emitting path.
        origin: ActionOrigin,
        /// The request.
        kind: ActionKind,
        /// What enforcement did with it.
        outcome: ActionOutcome,
    },
    /// An allocation change that actually landed.
    Alloc {
        /// When it took effect.
        at: SimTime,
        /// The container affected.
        container: ContainerId,
        /// Cores after the change.
        cores: u32,
        /// DVFS level after the change.
        freq_level: u8,
        /// Frequency in GHz after the change.
        freq_ghz: f64,
    },
    /// FirstResponder fired from the packet hook.
    FrBoost {
        /// Packet delivery time.
        at: SimTime,
        /// Node whose rx hook fired.
        node: NodeId,
        /// Destination container of the violating packet.
        dest: ContainerId,
        /// The triggering per-packet slack, nanoseconds (negative ⇒
        /// the request is behind its expected progress).
        slack_ns: i64,
        /// Boost level issued.
        level: u8,
        /// Number of containers boosted (dest + local downstream).
        targets: u32,
    },
    /// Per-container window metrics as seen by one decision cycle.
    Window {
        /// Tick time.
        at: SimTime,
        /// Observing node.
        node: NodeId,
        /// The container.
        container: ContainerId,
        /// Requests completed in the window.
        requests: u64,
        /// Mean `execTime`, nanoseconds.
        mean_exec_time_ns: u64,
        /// Mean `execMetric`, nanoseconds.
        mean_exec_metric_ns: u64,
        /// Mean `queueBuildup`.
        queue_buildup: f64,
        /// Requests that arrived carrying an `upscale` hint.
        upscale_hints: u64,
    },
    /// The Escalator's candidate scoreboard for one decision cycle, with
    /// a reason per emitted action.
    Scoreboard {
        /// Tick time.
        at: SimTime,
        /// Deciding node.
        node: NodeId,
        /// `(container, score)` for every observed container; score 0
        /// means "not a candidate".
        scores: Vec<(ContainerId, u32)>,
        /// The cycle's actions with their motivating reasons.
        actions: Vec<ScoredAction>,
    },
    /// A replica of a service group changed lifecycle phase (horizontal
    /// scaling landed).
    ReplicaLifecycle {
        /// When the transition happened.
        at: SimTime,
        /// The node hosting the group.
        node: NodeId,
        /// The replica's own container slot.
        container: ContainerId,
        /// The group's primary container (== the service id).
        service: ContainerId,
        /// Replica index within the group (0 = primary).
        replica: u32,
        /// The transition.
        phase: ReplicaPhase,
        /// Active (non-draining, non-retired) replicas in the group
        /// after the transition.
        active: u32,
    },
    /// A fault-plan injection began or cleared (see `sg_core::fault`).
    Fault {
        /// When the fault state changed.
        at: SimTime,
        /// Fault class: `crash`, `node-loss`, `pool-leak`, `jitter`, or
        /// `straggler`.
        fault: String,
        /// Target label: `svc:1`, `node:0`, `svc:1#2`, or `net`.
        target: String,
        /// `true` at injection, `false` when the fault clears.
        active: bool,
    },
    /// One span of a traced request (see [`crate::span`]).
    Span(SpanRecord),
    /// One sampled point of an internal-state series (see
    /// [`crate::metrics`]).
    Metric(MetricSample),
    /// Header line of a metrics stream: schema version and the sampling
    /// cadence (`interval_ns = 0` means "every decision cycle", the
    /// simulator's synchronous cadence). Written directly by the CLI
    /// before any relay, so it is always the stream's first line and can
    /// never be dropped.
    MetricsMeta {
        /// Schema version ([`crate::metrics::METRICS_SCHEMA_VERSION`]).
        version: u32,
        /// Sampling interval in nanoseconds; 0 = per decision cycle.
        interval_ns: u64,
    },
    /// Cumulative per-node latency-digest snapshot (see
    /// [`crate::agg::LatencyDigest`]). Snapshots are *state*, not
    /// deltas: readers keep the latest per node and merge across nodes,
    /// so a dropped snapshot only costs staleness, never correctness.
    Digest {
        /// Snapshot time.
        at: SimTime,
        /// The node whose aggregation shard this is.
        node: NodeId,
        /// The digest state.
        digest: LatencyDigest,
    },
    /// Cumulative per-node SLO counters (see [`crate::slo`]). Like
    /// [`TelemetryEvent::Digest`], a cumulative snapshot per node.
    Slo {
        /// Snapshot time.
        at: SimTime,
        /// The node whose aggregation shard this is.
        node: NodeId,
        /// The QoS deadline violations are judged against, nanoseconds.
        qos_ns: u64,
        /// Cumulative requests observed.
        total: u64,
        /// Cumulative requests beyond the deadline.
        bad: u64,
    },
    /// Cumulative per-node heavy-hitter snapshot (see
    /// [`crate::agg::TopK`]).
    TopK {
        /// Snapshot time.
        at: SimTime,
        /// The node whose aggregation shard this is.
        node: NodeId,
        /// Stream capacity of the sketch.
        capacity: u32,
        /// Tracked entries in canonical key order.
        entries: Vec<TopKEntry>,
    },
    /// Events lost in a bounded relay (emitted at shutdown by the live
    /// ring, once per event family with a nonzero drop counter).
    Dropped {
        /// How many events were lost.
        count: u64,
        /// Which family lost them. `None` on legacy traces recorded
        /// before per-family accounting; a demux routes `None` to every
        /// stream.
        family: Option<EventFamily>,
    },
    /// Stream header naming the file's schema (`sg-trace/v1`,
    /// `sg-spans/v1`, `sg-profile/v1`, ... — the `sg-bench/v1`
    /// convention). Written directly by the CLI before any relay, so it
    /// is always line 1 and can never be dropped; readers warn on
    /// unknown values instead of misparsing.
    Schema {
        /// The schema identifier string.
        schema: String,
    },
    /// Header of a self-profile report (see [`crate::profile`]).
    ProfileMeta {
        /// [`crate::profile::PROFILE_SCHEMA_VERSION`] at write time.
        version: u32,
        /// `"sim"` or `"live"`.
        substrate: String,
        /// Measured wall time of the profiled run, nanoseconds.
        wall_ns: u64,
    },
    /// One phase row of a self-profile report.
    ProfilePhase {
        /// Which phase.
        phase: ProfilePhase,
        /// Times the phase ran.
        count: u64,
        /// How many runs were timed (`== count` when unsampled).
        sampled: u64,
        /// Total nanoseconds (scaled estimate when sampled).
        total_ns: u64,
        /// Median timed duration.
        p50_ns: u64,
        /// 99th-percentile timed duration.
        p99_ns: u64,
        /// Slowest timed duration.
        max_ns: u64,
    },
    /// One watermark/counter of a self-profile report.
    ProfileMark {
        /// Which mark.
        mark: ProfileMark,
        /// Its value.
        value: u64,
    },
}

impl TelemetryEvent {
    /// Encode as one compact JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let value = match self {
            TelemetryEvent::Action {
                at,
                node,
                container,
                origin,
                kind,
                outcome,
            } => json!({
                "type": "action",
                "at_ns": at.as_nanos(),
                "node": node.0,
                "container": container.0,
                "origin": origin.name(),
                "kind": kind.name(),
                "arg": kind.arg(),
                "outcome": outcome.name(),
            }),
            TelemetryEvent::Alloc {
                at,
                container,
                cores,
                freq_level,
                freq_ghz,
            } => json!({
                "type": "alloc",
                "at_ns": at.as_nanos(),
                "container": container.0,
                "cores": *cores,
                "freq_level": *freq_level,
                "freq_ghz": *freq_ghz,
            }),
            TelemetryEvent::FrBoost {
                at,
                node,
                dest,
                slack_ns,
                level,
                targets,
            } => json!({
                "type": "fr_boost",
                "at_ns": at.as_nanos(),
                "node": node.0,
                "dest": dest.0,
                "slack_ns": *slack_ns,
                "level": *level,
                "targets": *targets,
            }),
            TelemetryEvent::Window {
                at,
                node,
                container,
                requests,
                mean_exec_time_ns,
                mean_exec_metric_ns,
                queue_buildup,
                upscale_hints,
            } => json!({
                "type": "window",
                "at_ns": at.as_nanos(),
                "node": node.0,
                "container": container.0,
                "requests": *requests,
                "mean_exec_time_ns": *mean_exec_time_ns,
                "mean_exec_metric_ns": *mean_exec_metric_ns,
                "queue_buildup": *queue_buildup,
                "upscale_hints": *upscale_hints,
            }),
            TelemetryEvent::Scoreboard {
                at,
                node,
                scores,
                actions,
            } => {
                let scores: Vec<Value> = scores
                    .iter()
                    .map(|(c, s)| Value::Array(vec![Value::from(c.0), Value::from(*s)]))
                    .collect();
                let actions: Vec<Value> = actions
                    .iter()
                    .map(|a| {
                        json!({
                            "container": a.container.0,
                            "kind": a.kind.name(),
                            "arg": a.kind.arg(),
                            "reason": a.reason.as_str(),
                        })
                    })
                    .collect();
                json!({
                    "type": "scoreboard",
                    "at_ns": at.as_nanos(),
                    "node": node.0,
                    "scores": scores,
                    "actions": actions,
                })
            }
            TelemetryEvent::ReplicaLifecycle {
                at,
                node,
                container,
                service,
                replica,
                phase,
                active,
            } => json!({
                "type": "replica",
                "at_ns": at.as_nanos(),
                "node": node.0,
                "container": container.0,
                "service": service.0,
                "replica": *replica,
                "phase": phase.name(),
                "active": *active,
            }),
            TelemetryEvent::Fault {
                at,
                fault,
                target,
                active,
            } => json!({
                "type": "fault",
                "at_ns": at.as_nanos(),
                "fault": fault.as_str(),
                "target": target.as_str(),
                "active": *active,
            }),
            TelemetryEvent::Span(s) => json!({
                "type": "span",
                "trace": s.trace,
                "span": s.span,
                "parent": s.parent,
                "container": s.container.map(|c| c.0),
                "node": s.node.map(|n| n.0),
                "start_ns": s.start.as_nanos(),
                "end_ns": s.end.as_nanos(),
                "net_in_ns": s.net_in.as_nanos(),
                "conn_wait_ns": s.conn_wait.as_nanos(),
                "service_ns": s.service.as_nanos(),
                "downstream_ns": s.downstream.as_nanos(),
                "freq_level": s.freq_level,
                "slack_ns": s.slack_ns,
            }),
            TelemetryEvent::Metric(s) => match s.metric.arm() {
                Some(arm) => json!({
                    "type": "metric",
                    "at_ns": s.at.as_nanos(),
                    "node": s.node.0,
                    "container": s.container.0,
                    "metric": s.metric.name(),
                    "arm": arm,
                    "value": s.value,
                }),
                None => json!({
                    "type": "metric",
                    "at_ns": s.at.as_nanos(),
                    "node": s.node.0,
                    "container": s.container.0,
                    "metric": s.metric.name(),
                    "value": s.value,
                }),
            },
            TelemetryEvent::MetricsMeta {
                version,
                interval_ns,
            } => json!({
                "type": "metrics_meta",
                "version": *version,
                "interval_ns": *interval_ns,
            }),
            TelemetryEvent::Digest { at, node, digest } => {
                let (min_ns, max_ns, sum_ns) = digest.bounds();
                let buckets: Vec<Value> = digest
                    .bucket_counts()
                    .map(|(b, c)| json!([u64::from(b), c]))
                    .collect();
                json!({
                    "type": "digest",
                    "at_ns": at.as_nanos(),
                    "node": node.0,
                    "sig_bits": digest.sig_bits(),
                    "count": digest.len(),
                    "min_ns": if digest.is_empty() { 0 } else { min_ns },
                    "max_ns": max_ns,
                    "sum_ns": sum_ns,
                    "buckets": buckets,
                })
            }
            TelemetryEvent::Slo {
                at,
                node,
                qos_ns,
                total,
                bad,
            } => json!({
                "type": "slo",
                "at_ns": at.as_nanos(),
                "node": node.0,
                "qos_ns": *qos_ns,
                "total": *total,
                "bad": *bad,
            }),
            TelemetryEvent::TopK {
                at,
                node,
                capacity,
                entries,
            } => {
                let entries: Vec<Value> = entries
                    .iter()
                    .map(|e| json!([e.key, e.weight, e.err]))
                    .collect();
                json!({
                    "type": "topk",
                    "at_ns": at.as_nanos(),
                    "node": node.0,
                    "capacity": *capacity,
                    "entries": entries,
                })
            }
            TelemetryEvent::Dropped { count, family } => match family {
                Some(f) => json!({
                    "type": "dropped",
                    "count": *count,
                    "family": f.name(),
                }),
                None => json!({
                    "type": "dropped",
                    "count": *count,
                }),
            },
            TelemetryEvent::Schema { schema } => json!({
                "type": "schema",
                "schema": schema.as_str(),
            }),
            TelemetryEvent::ProfileMeta {
                version,
                substrate,
                wall_ns,
            } => json!({
                "type": "profile_meta",
                "version": *version,
                "substrate": substrate.as_str(),
                "wall_ns": *wall_ns,
            }),
            TelemetryEvent::ProfilePhase {
                phase,
                count,
                sampled,
                total_ns,
                p50_ns,
                p99_ns,
                max_ns,
            } => json!({
                "type": "profile_phase",
                "phase": phase.name(),
                "count": *count,
                "sampled": *sampled,
                "total_ns": *total_ns,
                "p50_ns": *p50_ns,
                "p99_ns": *p99_ns,
                "max_ns": *max_ns,
            }),
            TelemetryEvent::ProfileMark { mark, value } => json!({
                "type": "profile_mark",
                "mark": mark.name(),
                "value": *value,
            }),
        };
        value.to_string()
    }

    /// Which per-stream trace this event belongs to (see
    /// [`EventFamily`]). A family-tagged `Dropped` reports for its own
    /// family; an untagged one is a legacy total and classified as
    /// decision traffic. `Schema` headers are written straight to their
    /// file by the CLI and never relayed; their nominal family is
    /// decision.
    pub fn family(&self) -> EventFamily {
        match self {
            TelemetryEvent::Span(_) => EventFamily::Span,
            TelemetryEvent::Metric(_)
            | TelemetryEvent::MetricsMeta { .. }
            | TelemetryEvent::Digest { .. }
            | TelemetryEvent::Slo { .. }
            | TelemetryEvent::TopK { .. } => EventFamily::Metrics,
            TelemetryEvent::ProfileMeta { .. }
            | TelemetryEvent::ProfilePhase { .. }
            | TelemetryEvent::ProfileMark { .. } => EventFamily::Profile,
            TelemetryEvent::Dropped {
                family: Some(f), ..
            } => *f,
            _ => EventFamily::Decision,
        }
    }

    /// Decode one JSON line produced by [`Self::to_json_line`].
    pub fn from_json_line(line: &str) -> Result<TelemetryEvent, String> {
        let v = serde_json::from_str(line).map_err(|e| e.to_string())?;
        let typ = field_str(&v, "type")?;
        let at = || Ok::<_, String>(SimTime::from_nanos(field_u64(&v, "at_ns")?));
        match typ {
            "action" => Ok(TelemetryEvent::Action {
                at: at()?,
                node: NodeId(field_u64(&v, "node")? as u32),
                container: ContainerId(field_u64(&v, "container")? as u32),
                origin: ActionOrigin::from_wire(field_str(&v, "origin")?)
                    .ok_or("unknown action origin")?,
                kind: ActionKind::from_wire(field_str(&v, "kind")?, field_u64(&v, "arg")? as u32)
                    .ok_or("unknown action kind")?,
                outcome: ActionOutcome::from_wire(field_str(&v, "outcome")?)
                    .ok_or("unknown action outcome")?,
            }),
            "alloc" => Ok(TelemetryEvent::Alloc {
                at: at()?,
                container: ContainerId(field_u64(&v, "container")? as u32),
                cores: field_u64(&v, "cores")? as u32,
                freq_level: field_u64(&v, "freq_level")? as u8,
                freq_ghz: field_f64(&v, "freq_ghz")?,
            }),
            "fr_boost" => Ok(TelemetryEvent::FrBoost {
                at: at()?,
                node: NodeId(field_u64(&v, "node")? as u32),
                dest: ContainerId(field_u64(&v, "dest")? as u32),
                slack_ns: v
                    .get("slack_ns")
                    .and_then(Value::as_i64)
                    .ok_or("missing slack_ns")?,
                level: field_u64(&v, "level")? as u8,
                targets: field_u64(&v, "targets")? as u32,
            }),
            "window" => Ok(TelemetryEvent::Window {
                at: at()?,
                node: NodeId(field_u64(&v, "node")? as u32),
                container: ContainerId(field_u64(&v, "container")? as u32),
                requests: field_u64(&v, "requests")?,
                mean_exec_time_ns: field_u64(&v, "mean_exec_time_ns")?,
                mean_exec_metric_ns: field_u64(&v, "mean_exec_metric_ns")?,
                queue_buildup: field_f64(&v, "queue_buildup")?,
                upscale_hints: field_u64(&v, "upscale_hints")?,
            }),
            "scoreboard" => {
                let scores = v
                    .get("scores")
                    .and_then(Value::as_array)
                    .ok_or("missing scores")?
                    .iter()
                    .map(|pair| {
                        let pair = pair.as_array().ok_or("bad score pair")?;
                        let c = pair.first().and_then(Value::as_u64).ok_or("bad score id")?;
                        let s = pair.get(1).and_then(Value::as_u64).ok_or("bad score")?;
                        Ok((ContainerId(c as u32), s as u32))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                let actions = v
                    .get("actions")
                    .and_then(Value::as_array)
                    .ok_or("missing actions")?
                    .iter()
                    .map(|a| {
                        Ok(ScoredAction {
                            container: ContainerId(field_u64(a, "container")? as u32),
                            kind: ActionKind::from_wire(
                                field_str(a, "kind")?,
                                field_u64(a, "arg")? as u32,
                            )
                            .ok_or("unknown action kind")?,
                            reason: field_str(a, "reason")?.to_string(),
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(TelemetryEvent::Scoreboard {
                    at: at()?,
                    node: NodeId(field_u64(&v, "node")? as u32),
                    scores,
                    actions,
                })
            }
            "replica" => Ok(TelemetryEvent::ReplicaLifecycle {
                at: at()?,
                node: NodeId(field_u64(&v, "node")? as u32),
                container: ContainerId(field_u64(&v, "container")? as u32),
                service: ContainerId(field_u64(&v, "service")? as u32),
                replica: field_u64(&v, "replica")? as u32,
                phase: ReplicaPhase::from_wire(field_str(&v, "phase")?)
                    .ok_or("unknown replica phase")?,
                active: field_u64(&v, "active")? as u32,
            }),
            "fault" => Ok(TelemetryEvent::Fault {
                at: at()?,
                fault: field_str(&v, "fault")?.to_string(),
                target: field_str(&v, "target")?.to_string(),
                active: v
                    .get("active")
                    .and_then(Value::as_bool)
                    .ok_or("missing or non-boolean field 'active'")?,
            }),
            "span" => Ok(TelemetryEvent::Span(SpanRecord {
                trace: field_u64(&v, "trace")?,
                span: field_u64(&v, "span")?,
                parent: field_opt_u64(&v, "parent")?,
                container: field_opt_u64(&v, "container")?.map(|c| ContainerId(c as u32)),
                node: field_opt_u64(&v, "node")?.map(|n| NodeId(n as u32)),
                start: SimTime::from_nanos(field_u64(&v, "start_ns")?),
                end: SimTime::from_nanos(field_u64(&v, "end_ns")?),
                net_in: SimDuration::from_nanos(field_u64(&v, "net_in_ns")?),
                conn_wait: SimDuration::from_nanos(field_u64(&v, "conn_wait_ns")?),
                service: SimDuration::from_nanos(field_u64(&v, "service_ns")?),
                downstream: SimDuration::from_nanos(field_u64(&v, "downstream_ns")?),
                freq_level: field_u64(&v, "freq_level")? as u8,
                slack_ns: v
                    .get("slack_ns")
                    .and_then(Value::as_i64)
                    .ok_or("missing slack_ns")?,
            })),
            "metric" => {
                let name = field_str(&v, "metric")?;
                let arm = match v.get("arm") {
                    None => None,
                    Some(x) => Some(
                        x.as_u64()
                            .ok_or_else(|| "non-numeric field 'arm'".to_string())?
                            as u8,
                    ),
                };
                let metric = MetricId::from_wire(name, arm)
                    .ok_or_else(|| format!("unknown metric '{name}'"))?;
                Ok(TelemetryEvent::Metric(MetricSample {
                    at: at()?,
                    node: NodeId(field_u64(&v, "node")? as u32),
                    container: ContainerId(field_u64(&v, "container")? as u32),
                    metric,
                    value: field_f64(&v, "value")?,
                }))
            }
            "metrics_meta" => Ok(TelemetryEvent::MetricsMeta {
                version: field_u64(&v, "version")? as u32,
                interval_ns: field_u64(&v, "interval_ns")?,
            }),
            "digest" => {
                let buckets = v
                    .get("buckets")
                    .and_then(Value::as_array)
                    .ok_or("missing buckets")?
                    .iter()
                    .map(|pair| {
                        let pair = pair.as_array().ok_or("bad bucket pair")?;
                        let b = pair.first().and_then(Value::as_u64).ok_or("bad bucket")?;
                        let c = pair.get(1).and_then(Value::as_u64).ok_or("bad count")?;
                        Ok((b as u32, c))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                let digest = LatencyDigest::from_parts(
                    field_u64(&v, "sig_bits")? as u32,
                    buckets,
                    field_u64(&v, "min_ns")?,
                    field_u64(&v, "max_ns")?,
                    field_u64(&v, "sum_ns")?,
                )?;
                if digest.len() != field_u64(&v, "count")? {
                    return Err("digest bucket counts disagree with 'count'".into());
                }
                Ok(TelemetryEvent::Digest {
                    at: at()?,
                    node: NodeId(field_u64(&v, "node")? as u32),
                    digest,
                })
            }
            "slo" => {
                let total = field_u64(&v, "total")?;
                let bad = field_u64(&v, "bad")?;
                if bad > total {
                    return Err("slo 'bad' exceeds 'total'".into());
                }
                Ok(TelemetryEvent::Slo {
                    at: at()?,
                    node: NodeId(field_u64(&v, "node")? as u32),
                    qos_ns: field_u64(&v, "qos_ns")?,
                    total,
                    bad,
                })
            }
            "topk" => {
                let entries = v
                    .get("entries")
                    .and_then(Value::as_array)
                    .ok_or("missing entries")?
                    .iter()
                    .map(|t| {
                        let t = t.as_array().ok_or("bad topk entry")?;
                        let key = t.first().and_then(Value::as_u64).ok_or("bad topk key")?;
                        let weight = t.get(1).and_then(Value::as_u64).ok_or("bad topk weight")?;
                        let err = t.get(2).and_then(Value::as_u64).ok_or("bad topk err")?;
                        Ok(TopKEntry { key, weight, err })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(TelemetryEvent::TopK {
                    at: at()?,
                    node: NodeId(field_u64(&v, "node")? as u32),
                    capacity: field_u64(&v, "capacity")? as u32,
                    entries,
                })
            }
            "dropped" => Ok(TelemetryEvent::Dropped {
                count: field_u64(&v, "count")?,
                family: match v.get("family") {
                    // Absent on legacy traces recorded before per-family
                    // drop accounting.
                    None => None,
                    Some(f) => Some(
                        EventFamily::from_wire(f.as_str().ok_or("non-string field 'family'")?)
                            .ok_or("unknown drop family")?,
                    ),
                },
            }),
            "schema" => Ok(TelemetryEvent::Schema {
                schema: field_str(&v, "schema")?.to_string(),
            }),
            "profile_meta" => Ok(TelemetryEvent::ProfileMeta {
                version: field_u64(&v, "version")? as u32,
                substrate: field_str(&v, "substrate")?.to_string(),
                wall_ns: field_u64(&v, "wall_ns")?,
            }),
            "profile_phase" => Ok(TelemetryEvent::ProfilePhase {
                phase: ProfilePhase::from_wire(field_str(&v, "phase")?)
                    .ok_or("unknown profile phase")?,
                count: field_u64(&v, "count")?,
                sampled: field_u64(&v, "sampled")?,
                total_ns: field_u64(&v, "total_ns")?,
                p50_ns: field_u64(&v, "p50_ns")?,
                p99_ns: field_u64(&v, "p99_ns")?,
                max_ns: field_u64(&v, "max_ns")?,
            }),
            "profile_mark" => Ok(TelemetryEvent::ProfileMark {
                mark: ProfileMark::from_wire(field_str(&v, "mark")?)
                    .ok_or("unknown profile mark")?,
                value: field_u64(&v, "value")?,
            }),
            other => Err(format!("unknown event type '{other}'")),
        }
    }
}

fn field_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-numeric field '{key}'"))
}

/// A field that must be present but may be JSON `null`.
fn field_opt_u64(v: &Value, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None => Err(format!("missing field '{key}'")),
        Some(Value::Null) => Ok(None),
        Some(x) => x
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("non-numeric field '{key}'")),
    }
}

fn field_f64(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field '{key}'"))
}

fn field_str<'v>(v: &'v Value, key: &str) -> Result<&'v str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing or non-string field '{key}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<TelemetryEvent> {
        vec![
            TelemetryEvent::Action {
                at: SimTime::from_micros(1500),
                node: NodeId(1),
                container: ContainerId(3),
                origin: ActionOrigin::PacketHook,
                kind: ActionKind::SetFreq { level: 8 },
                outcome: ActionOutcome::Deferred,
            },
            TelemetryEvent::Action {
                at: SimTime::from_micros(1600),
                node: NodeId(0),
                container: ContainerId(9),
                origin: ActionOrigin::Tick,
                kind: ActionKind::SetEgressHint { hops: 2 },
                outcome: ActionOutcome::RejectedCrossNode,
            },
            TelemetryEvent::Alloc {
                at: SimTime::from_millis(2),
                container: ContainerId(0),
                cores: 4,
                freq_level: 2,
                freq_ghz: 2.2,
            },
            TelemetryEvent::FrBoost {
                at: SimTime::from_millis(3),
                node: NodeId(0),
                dest: ContainerId(1),
                slack_ns: -12_345,
                level: 8,
                targets: 2,
            },
            TelemetryEvent::Window {
                at: SimTime::from_millis(100),
                node: NodeId(0),
                container: ContainerId(1),
                requests: 42,
                mean_exec_time_ns: 812_000,
                mean_exec_metric_ns: 700_000,
                queue_buildup: 1.16,
                upscale_hints: 3,
            },
            TelemetryEvent::Scoreboard {
                at: SimTime::from_millis(100),
                node: NodeId(0),
                scores: vec![(ContainerId(0), 3), (ContainerId(1), 0)],
                actions: vec![ScoredAction {
                    container: ContainerId(0),
                    kind: ActionKind::SetCores { cores: 6 },
                    reason: "upscale: score 3".into(),
                }],
            },
            TelemetryEvent::Action {
                at: SimTime::from_millis(150),
                node: NodeId(0),
                container: ContainerId(1),
                origin: ActionOrigin::Tick,
                kind: ActionKind::SetReplicas { replicas: 3 },
                outcome: ActionOutcome::Applied,
            },
            TelemetryEvent::ReplicaLifecycle {
                at: SimTime::from_millis(150),
                node: NodeId(0),
                container: ContainerId(5),
                service: ContainerId(1),
                replica: 2,
                phase: ReplicaPhase::Spawned,
                active: 3,
            },
            TelemetryEvent::ReplicaLifecycle {
                at: SimTime::from_millis(600),
                node: NodeId(0),
                container: ContainerId(5),
                service: ContainerId(1),
                replica: 2,
                phase: ReplicaPhase::Retired,
                active: 2,
            },
            TelemetryEvent::Fault {
                at: SimTime::from_secs(3),
                fault: "straggler".into(),
                target: "svc:1#2".into(),
                active: true,
            },
            TelemetryEvent::Fault {
                at: SimTime::from_secs(5),
                fault: "pool-leak".into(),
                target: "svc:2".into(),
                active: false,
            },
            TelemetryEvent::Span(SpanRecord {
                trace: 41,
                span: 97,
                parent: Some(96),
                container: Some(ContainerId(1)),
                node: Some(NodeId(0)),
                start: SimTime::from_micros(1200),
                end: SimTime::from_micros(1950),
                net_in: SimDuration::from_micros(20),
                conn_wait: SimDuration::from_micros(410),
                service: SimDuration::from_micros(150),
                downstream: SimDuration::from_micros(600),
                freq_level: 8,
                slack_ns: -77_000,
            }),
            TelemetryEvent::Span(SpanRecord {
                trace: 41,
                span: 96,
                parent: None,
                container: None,
                node: None,
                start: SimTime::from_micros(1180),
                end: SimTime::from_micros(2000),
                net_in: SimDuration::ZERO,
                conn_wait: SimDuration::ZERO,
                service: SimDuration::ZERO,
                downstream: SimDuration::from_micros(820),
                freq_level: 0,
                slack_ns: 0,
            }),
            TelemetryEvent::Metric(MetricSample {
                at: SimTime::from_millis(200),
                node: NodeId(0),
                container: ContainerId(1),
                metric: MetricId::Cores,
                value: 4.0,
            }),
            TelemetryEvent::Metric(MetricSample {
                at: SimTime::from_millis(200),
                node: NodeId(0),
                container: ContainerId(1),
                metric: MetricId::Sensitivity(3),
                value: 0.125,
            }),
            TelemetryEvent::Metric(MetricSample {
                at: SimTime::from_millis(200),
                node: NodeId(1),
                container: ContainerId(2),
                metric: MetricId::SlackP99,
                value: -42_500.0,
            }),
            TelemetryEvent::Metric(MetricSample {
                at: SimTime::from_millis(200),
                node: NodeId(0),
                container: ContainerId(1),
                metric: MetricId::Replicas,
                value: 3.0,
            }),
            TelemetryEvent::MetricsMeta {
                version: 1,
                interval_ns: 100_000_000,
            },
            TelemetryEvent::Digest {
                at: SimTime::from_millis(250),
                node: NodeId(1),
                digest: {
                    let mut d = crate::agg::LatencyDigest::with_default_resolution();
                    d.record(SimDuration::from_micros(120));
                    d.record(SimDuration::from_micros(950));
                    d.record(SimDuration::from_micros(950));
                    d
                },
            },
            TelemetryEvent::Digest {
                at: SimTime::from_millis(250),
                node: NodeId(2),
                digest: crate::agg::LatencyDigest::with_default_resolution(),
            },
            TelemetryEvent::Slo {
                at: SimTime::from_millis(250),
                node: NodeId(1),
                qos_ns: 500_000,
                total: 1_234,
                bad: 5,
            },
            TelemetryEvent::TopK {
                at: SimTime::from_millis(250),
                node: NodeId(1),
                capacity: 8,
                entries: vec![
                    crate::agg::TopKEntry {
                        key: 41,
                        weight: 900_000,
                        err: 0,
                    },
                    crate::agg::TopKEntry {
                        key: 98,
                        weight: 120_000,
                        err: 40_000,
                    },
                ],
            },
            TelemetryEvent::Dropped {
                count: 7,
                family: None,
            },
            TelemetryEvent::Dropped {
                count: 2,
                family: Some(EventFamily::Metrics),
            },
            TelemetryEvent::Dropped {
                count: 1,
                family: Some(EventFamily::Profile),
            },
            TelemetryEvent::Schema {
                schema: "sg-trace/v1".into(),
            },
            TelemetryEvent::ProfileMeta {
                version: 1,
                substrate: "live".into(),
                wall_ns: 400_123_456,
            },
            TelemetryEvent::ProfilePhase {
                phase: ProfilePhase::SimDeliverRequest,
                count: 812_345,
                sampled: 6_347,
                total_ns: 39_000_000,
                p50_ns: 48,
                p99_ns: 96,
                max_ns: 8_100,
            },
            TelemetryEvent::ProfileMark {
                mark: ProfileMark::RingOccupancyHighWater,
                value: 1_024,
            },
        ]
    }

    #[test]
    fn events_round_trip_through_jsonl() {
        for event in samples() {
            let line = event.to_json_line();
            assert!(!line.contains('\n'), "one event per line: {line}");
            let back = TelemetryEvent::from_json_line(&line).expect("parse back");
            assert_eq!(back, event, "line: {line}");
        }
    }

    #[test]
    fn negative_slack_survives() {
        let line = TelemetryEvent::FrBoost {
            at: SimTime::ZERO,
            node: NodeId(0),
            dest: ContainerId(0),
            slack_ns: i64::MIN + 1,
            level: 1,
            targets: 1,
        }
        .to_json_line();
        match TelemetryEvent::from_json_line(&line).unwrap() {
            TelemetryEvent::FrBoost { slack_ns, .. } => assert_eq!(slack_ns, i64::MIN + 1),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn unknown_type_is_an_error() {
        assert!(TelemetryEvent::from_json_line("{\"type\":\"nope\"}").is_err());
        assert!(TelemetryEvent::from_json_line("not json").is_err());
    }

    /// Traces written before per-family drop accounting carry no
    /// `family` field; they must still parse (as the legacy total).
    #[test]
    fn legacy_dropped_line_parses_without_family() {
        let event = TelemetryEvent::from_json_line("{\"type\":\"dropped\",\"count\":9}").unwrap();
        assert_eq!(
            event,
            TelemetryEvent::Dropped {
                count: 9,
                family: None
            }
        );
        assert_eq!(event.family(), EventFamily::Decision);
    }

    #[test]
    fn events_classify_into_their_families() {
        for event in samples() {
            let family = event.family();
            match &event {
                TelemetryEvent::Span(_) => assert_eq!(family, EventFamily::Span),
                TelemetryEvent::Metric(_)
                | TelemetryEvent::MetricsMeta { .. }
                | TelemetryEvent::Digest { .. }
                | TelemetryEvent::Slo { .. }
                | TelemetryEvent::TopK { .. } => {
                    assert_eq!(family, EventFamily::Metrics)
                }
                TelemetryEvent::ProfileMeta { .. }
                | TelemetryEvent::ProfilePhase { .. }
                | TelemetryEvent::ProfileMark { .. } => {
                    assert_eq!(family, EventFamily::Profile)
                }
                TelemetryEvent::Dropped {
                    family: Some(f), ..
                } => assert_eq!(family, *f),
                _ => assert_eq!(family, EventFamily::Decision),
            }
        }
    }
}
