//! Trace aggregation behind the `sg-trace` binary.
//!
//! Consumes a stream of [`TelemetryEvent`]s and produces the four views
//! the tentpole asks for: per-container allocation timeline, the
//! boost→retire latency distribution, the decision-cycle action
//! histogram (by origin × kind × outcome), and the clamp/rejection
//! audit, plus the explicit drop count.

use crate::event::{ActionKind, ActionOutcome, TelemetryEvent};
use serde_json::{json, Value};
use sg_core::time::SimTime;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One step in a container's allocation timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllocStep {
    /// When the allocation changed.
    pub at: SimTime,
    /// Cores after the change.
    pub cores: u32,
    /// DVFS level after the change.
    pub freq_level: u8,
    /// Frequency in GHz after the change.
    pub freq_ghz: f64,
}

/// Aggregated view of one trace.
#[derive(Debug, Default)]
pub struct TraceSummary {
    /// Total events consumed (excluding unparseable lines).
    pub events: u64,
    /// Allocation timeline per container, in trace order.
    pub timeline: BTreeMap<u32, Vec<AllocStep>>,
    /// Completed boost episodes (level left 0 → returned to 0) per
    /// container: durations in nanoseconds.
    pub boost_retire_ns: Vec<u64>,
    /// Boost episodes still open when the trace ended.
    pub open_boosts: u64,
    /// FirstResponder boosts observed, with min/sum of triggering slack.
    pub fr_boosts: u64,
    /// Most negative triggering slack seen (ns), if any boost fired.
    pub worst_slack_ns: Option<i64>,
    /// Action counts keyed by `(origin, kind, outcome)` wire names.
    pub action_histogram: BTreeMap<(String, String, String), u64>,
    /// Cross-node rejections per offending `(node, container)` pair.
    pub cross_node_rejections: BTreeMap<(u32, u32), u64>,
    /// Actions clamped to constraints (not cross-node).
    pub clamped: u64,
    /// Decision cycles observed (scoreboard events).
    pub cycles: u64,
    /// Window records observed.
    pub windows: u64,
    /// Events the recording pipeline itself dropped (from `Dropped`
    /// records in the trace).
    pub dropped: u64,
    /// Span records seen in the stream (summarized separately by
    /// [`crate::critical::SpanReport`]).
    pub spans: u64,
    /// Metrics samples/headers seen in the stream (summarized separately
    /// by [`crate::timeline::TimelineSet`] / `sg-timeline`).
    pub metric_samples: u64,
    /// Accepted (`Deferred`) `SetFreq` actions per container.
    pub freq_deferred: BTreeMap<u32, u64>,
    /// Landed (`Applied`/`Clamped`) `SetCores` actions per container.
    pub core_actions: BTreeMap<u32, u64>,
    /// Observed DVFS-level changes per container (baseline level 0).
    pub freq_changes: BTreeMap<u32, u64>,
    /// Observed core-count changes per container (between consecutive
    /// `Alloc` records; the pre-trace baseline is unknowable).
    pub core_changes: BTreeMap<u32, u64>,
    /// Replica-lifecycle transition counts keyed by phase wire name
    /// (`spawned` / `draining` / `retired`).
    pub replica_transitions: BTreeMap<&'static str, u64>,
    /// Fault-injection starts per fault class (`active = true` records;
    /// every fault emits a matching end record not counted here).
    pub fault_starts: BTreeMap<String, u64>,
    /// Schema header strings seen in the stream (`sg-trace/v1` style),
    /// in trace order. `sg-trace` warns on unrecognized values.
    pub schemas: Vec<String>,
    /// Profiler events seen in the stream (summarized separately by
    /// [`crate::profile::ProfileReport`] / `sg-trace --profile`).
    pub profile_events: u64,
    /// Aggregation snapshots (`digest`/`slo`/`topk`) seen in the stream
    /// (summarized separately by `sg-trace watch`).
    pub agg_events: u64,
    /// Active-replica-count steps per service group (keyed by the
    /// group's primary container), in trace order.
    pub replica_timeline: BTreeMap<u32, Vec<(SimTime, u32)>>,
}

/// Incremental [`TraceSummary`] accumulator, so `sg-trace` can fold a
/// multi-gigabyte export one streamed event at a time instead of
/// materializing the file (see [`crate::reader::TraceStream`]).
#[derive(Debug, Default)]
pub struct SummaryBuilder {
    s: TraceSummary,
    /// Per-container open boost episode: start while level > 0.
    open: BTreeMap<u32, SimTime>,
}

impl SummaryBuilder {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one event.
    pub fn push(&mut self, event: TelemetryEvent) {
        let s = &mut self.s;
        let open = &mut self.open;
        s.events += 1;
        {
            match event {
                TelemetryEvent::Action {
                    node,
                    container,
                    origin,
                    kind,
                    outcome,
                    ..
                } => {
                    *s.action_histogram
                        .entry((
                            origin.name().to_string(),
                            kind.name().to_string(),
                            outcome.name().to_string(),
                        ))
                        .or_insert(0) += 1;
                    match outcome {
                        ActionOutcome::RejectedCrossNode => {
                            *s.cross_node_rejections
                                .entry((node.0, container.0))
                                .or_insert(0) += 1;
                        }
                        ActionOutcome::Clamped => s.clamped += 1,
                        _ => {}
                    }
                    match (kind, outcome) {
                        (ActionKind::SetFreq { .. }, ActionOutcome::Deferred) => {
                            *s.freq_deferred.entry(container.0).or_insert(0) += 1;
                        }
                        (
                            ActionKind::SetCores { .. },
                            ActionOutcome::Applied | ActionOutcome::Clamped,
                        ) => {
                            *s.core_actions.entry(container.0).or_insert(0) += 1;
                        }
                        _ => {}
                    }
                }
                TelemetryEvent::Alloc {
                    at,
                    container,
                    cores,
                    freq_level,
                    freq_ghz,
                } => {
                    s.timeline.entry(container.0).or_default().push(AllocStep {
                        at,
                        cores,
                        freq_level,
                        freq_ghz,
                    });
                    if freq_level > 0 {
                        open.entry(container.0).or_insert(at);
                    } else if let Some(start) = open.remove(&container.0) {
                        s.boost_retire_ns
                            .push(at.as_nanos().saturating_sub(start.as_nanos()));
                    }
                }
                TelemetryEvent::FrBoost { slack_ns, .. } => {
                    s.fr_boosts += 1;
                    s.worst_slack_ns = Some(s.worst_slack_ns.map_or(slack_ns, |w| w.min(slack_ns)));
                }
                TelemetryEvent::ReplicaLifecycle {
                    at,
                    service,
                    phase,
                    active,
                    ..
                } => {
                    *s.replica_transitions.entry(phase.name()).or_insert(0) += 1;
                    s.replica_timeline
                        .entry(service.0)
                        .or_default()
                        .push((at, active));
                }
                TelemetryEvent::Window { .. } => s.windows += 1,
                TelemetryEvent::Scoreboard { .. } => s.cycles += 1,
                TelemetryEvent::Span(_) => s.spans += 1,
                TelemetryEvent::Metric(_) | TelemetryEvent::MetricsMeta { .. } => {
                    s.metric_samples += 1
                }
                TelemetryEvent::Fault { fault, active, .. } => {
                    if active {
                        *s.fault_starts.entry(fault).or_insert(0) += 1;
                    }
                }
                TelemetryEvent::Dropped { count, .. } => s.dropped += count,
                TelemetryEvent::Schema { schema } => s.schemas.push(schema),
                TelemetryEvent::ProfileMeta { .. }
                | TelemetryEvent::ProfilePhase { .. }
                | TelemetryEvent::ProfileMark { .. } => s.profile_events += 1,
                TelemetryEvent::Digest { .. }
                | TelemetryEvent::Slo { .. }
                | TelemetryEvent::TopK { .. } => s.agg_events += 1,
            }
        }
    }

    /// Close open episodes, derive the reconciliation inputs, and
    /// return the finished summary.
    pub fn finish(self) -> TraceSummary {
        let SummaryBuilder { mut s, open } = self;
        s.open_boosts = open.len() as u64;
        s.boost_retire_ns.sort_unstable();

        // Reconciliation inputs: how often each container's allocation
        // actually moved. DVFS starts at level 0 on both substrates, so
        // the first boost counts; the initial core count is not in the
        // trace, so only step-to-step core changes count.
        for (container, steps) in &s.timeline {
            let mut level = 0u8;
            let mut cores: Option<u32> = None;
            for step in steps {
                if step.freq_level != level {
                    *s.freq_changes.entry(*container).or_insert(0) += 1;
                    level = step.freq_level;
                }
                if let Some(prev) = cores {
                    if step.cores != prev {
                        *s.core_changes.entry(*container).or_insert(0) += 1;
                    }
                }
                cores = Some(step.cores);
            }
        }
        s
    }
}

impl TraceSummary {
    /// Aggregate a stream of events.
    pub fn from_events<I: IntoIterator<Item = TelemetryEvent>>(events: I) -> Self {
        let mut b = SummaryBuilder::new();
        for event in events {
            b.push(event);
        }
        b.finish()
    }

    /// Clamp/reconciliation audit: every observed allocation change must
    /// be explainable by an accepted action in the same trace, and the
    /// recording pipeline must not have dropped events. Returns one line
    /// per mismatch; empty means the trace reconciles.
    pub fn audit(&self) -> Vec<String> {
        let mut issues = Vec::new();
        for (container, changes) in &self.freq_changes {
            let budget = self.freq_deferred.get(container).copied().unwrap_or(0);
            if *changes > budget {
                issues.push(format!(
                    "container {container}: {changes} DVFS change(s) but only {budget} \
                     accepted set_freq action(s)"
                ));
            }
        }
        for (container, changes) in &self.core_changes {
            let budget = self.core_actions.get(container).copied().unwrap_or(0);
            if *changes > budget {
                issues.push(format!(
                    "container {container}: {changes} core change(s) but only {budget} \
                     landed set_cores action(s)"
                ));
            }
        }
        if self.dropped > 0 {
            issues.push(format!(
                "{} event(s) dropped by the recording pipeline",
                self.dropped
            ));
        }
        issues
    }

    /// Machine-readable summary for `sg-trace --json`.
    pub fn to_json(&self) -> Value {
        let histogram: Vec<Value> = self
            .action_histogram
            .iter()
            .map(|((origin, kind, outcome), count)| {
                json!({
                    "origin": origin.as_str(),
                    "kind": kind.as_str(),
                    "outcome": outcome.as_str(),
                    "count": *count,
                })
            })
            .collect();
        let rejections: Vec<Value> = self
            .cross_node_rejections
            .iter()
            .map(|((node, container), count)| {
                json!({ "node": *node, "container": *container, "count": *count })
            })
            .collect();
        let fault_starts: Vec<Value> = self
            .fault_starts
            .iter()
            .map(|(fault, count)| json!({ "fault": fault.as_str(), "count": *count }))
            .collect();
        json!({
            "events": self.events,
            "cycles": self.cycles,
            "windows": self.windows,
            "fr_boosts": self.fr_boosts,
            "worst_slack_ns": self.worst_slack_ns,
            "boost_episodes": self.boost_retire_ns.len(),
            "boost_retire_p50_ns": self.boost_retire_percentile(0.50),
            "boost_retire_p99_ns": self.boost_retire_percentile(0.99),
            "open_boosts": self.open_boosts,
            "clamped": self.clamped,
            "cross_node_rejections": rejections,
            "action_histogram": histogram,
            "dropped": self.dropped,
            "spans": self.spans,
            "metric_samples": self.metric_samples,
            "agg_events": self.agg_events,
            "replica_transitions": self
                .replica_transitions
                .iter()
                .map(|(phase, count)| json!({ "phase": *phase, "count": *count }))
                .collect::<Vec<Value>>(),
            "fault_starts": fault_starts,
            "audit": self.audit(),
        })
    }

    /// Percentile (0.0–1.0) of the boost→retire distribution, ns.
    pub fn boost_retire_percentile(&self, q: f64) -> Option<u64> {
        if self.boost_retire_ns.is_empty() {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0)) * (self.boost_retire_ns.len() - 1) as f64).round() as usize;
        Some(self.boost_retire_ns[rank])
    }

    /// Total cross-node rejections.
    pub fn cross_node_total(&self) -> u64 {
        self.cross_node_rejections.values().sum()
    }

    /// Render the human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "trace: {} events", self.events);
        let _ = writeln!(
            out,
            "  {} decision cycles, {} window records, {} FirstResponder boosts",
            self.cycles, self.windows, self.fr_boosts
        );
        if let Some(worst) = self.worst_slack_ns {
            let _ = writeln!(out, "  worst triggering slack: {worst} ns");
        }
        if self.spans > 0 {
            let _ = writeln!(
                out,
                "  {} span records (see the span report for attribution)",
                self.spans
            );
        }
        if self.metric_samples > 0 {
            let _ = writeln!(
                out,
                "  {} metrics samples (render with sg-timeline)",
                self.metric_samples
            );
        }
        if self.agg_events > 0 {
            let _ = writeln!(
                out,
                "  {} aggregation snapshots (render with sg-trace watch)",
                self.agg_events
            );
        }
        if self.profile_events > 0 {
            let _ = writeln!(
                out,
                "  {} profiler records (render with sg-trace --profile)",
                self.profile_events
            );
        }
        if !self.fault_starts.is_empty() {
            let counts: Vec<String> = self
                .fault_starts
                .iter()
                .map(|(fault, count)| format!("{fault}={count}"))
                .collect();
            let _ = writeln!(out, "  faults injected: {}", counts.join(" "));
        }
        if self.dropped > 0 {
            let _ = writeln!(
                out,
                "  !! {} events dropped by the recording pipeline",
                self.dropped
            );
        }

        let _ = writeln!(out, "\nallocation timeline (per container):");
        if self.timeline.is_empty() {
            let _ = writeln!(out, "  (no allocation changes recorded)");
        }
        for (container, steps) in &self.timeline {
            let _ = writeln!(out, "  c{container}: {} changes", steps.len());
            for step in steps {
                let _ = writeln!(
                    out,
                    "    {:>12} ns  cores={:<3} level={:<2} ({:.2} GHz)",
                    step.at.as_nanos(),
                    step.cores,
                    step.freq_level,
                    step.freq_ghz
                );
            }
        }

        if !self.replica_timeline.is_empty() {
            let _ = writeln!(out, "\nreplica timeline (per service group):");
            for (service, steps) in &self.replica_timeline {
                let _ = writeln!(out, "  s{service}: {} transitions", steps.len());
                for (at, active) in steps {
                    let _ = writeln!(out, "    {:>12} ns  active={active}", at.as_nanos());
                }
            }
            let counts: Vec<String> = self
                .replica_transitions
                .iter()
                .map(|(phase, count)| format!("{phase}={count}"))
                .collect();
            let _ = writeln!(out, "  transitions: {}", counts.join(" "));
        }

        let _ = writeln!(out, "\nboost -> retire latency:");
        if self.boost_retire_ns.is_empty() {
            let _ = writeln!(out, "  (no completed boost episodes)");
        } else {
            let n = self.boost_retire_ns.len();
            let mean = self.boost_retire_ns.iter().sum::<u64>() / n as u64;
            let _ = writeln!(out, "  {n} completed episodes, mean {mean} ns");
            for (label, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("max", 1.0)] {
                if let Some(v) = self.boost_retire_percentile(q) {
                    let _ = writeln!(out, "  {label}: {v} ns");
                }
            }
        }
        if self.open_boosts > 0 {
            let _ = writeln!(out, "  ({} episodes still open at end)", self.open_boosts);
        }

        let _ = writeln!(out, "\naction histogram (origin / kind / outcome):");
        if self.action_histogram.is_empty() {
            let _ = writeln!(out, "  (no actions recorded)");
        }
        for ((origin, kind, outcome), count) in &self.action_histogram {
            let _ = writeln!(out, "  {origin:<12} {kind:<16} {outcome:<20} {count:>8}");
        }

        let _ = writeln!(out, "\nclamp audit:");
        let _ = writeln!(out, "  constraint-clamped actions: {}", self.clamped);
        let _ = writeln!(out, "  cross-node rejections: {}", self.cross_node_total());
        for ((node, container), count) in &self.cross_node_rejections {
            let _ = writeln!(out, "    node {node} -> c{container}: {count}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ActionKind, ActionOrigin, TelemetryEvent};
    use sg_core::ids::{ContainerId, NodeId};

    fn action(outcome: ActionOutcome) -> TelemetryEvent {
        TelemetryEvent::Action {
            at: SimTime::from_micros(5),
            node: NodeId(1),
            container: ContainerId(0),
            origin: ActionOrigin::Tick,
            kind: ActionKind::SetFreq { level: 3 },
            outcome,
        }
    }

    fn alloc(at_us: u64, level: u8) -> TelemetryEvent {
        TelemetryEvent::Alloc {
            at: SimTime::from_micros(at_us),
            container: ContainerId(2),
            cores: 2,
            freq_level: level,
            freq_ghz: 1.0 + level as f64,
        }
    }

    #[test]
    fn boost_retire_episodes_are_paired() {
        let s = TraceSummary::from_events(vec![
            alloc(100, 8), // boost opens
            alloc(150, 8), // still boosted: same episode
            alloc(300, 0), // retires: 200us episode
            alloc(400, 5), // opens again, never retires
        ]);
        assert_eq!(s.boost_retire_ns, vec![200_000]);
        assert_eq!(s.open_boosts, 1);
        assert_eq!(s.timeline[&2].len(), 4);
        assert_eq!(s.boost_retire_percentile(0.5), Some(200_000));
    }

    #[test]
    fn audit_counts_rejections_and_clamps_separately() {
        let s = TraceSummary::from_events(vec![
            action(ActionOutcome::Applied),
            action(ActionOutcome::Clamped),
            action(ActionOutcome::RejectedCrossNode),
            action(ActionOutcome::RejectedCrossNode),
            TelemetryEvent::Dropped {
                count: 3,
                family: None,
            },
        ]);
        assert_eq!(s.clamped, 1);
        assert_eq!(s.cross_node_total(), 2);
        assert_eq!(s.cross_node_rejections[&(1, 0)], 2);
        assert_eq!(s.dropped, 3);
        let report = s.render();
        assert!(report.contains("cross-node rejections: 2"));
        assert!(report.contains("dropped"));
    }

    #[test]
    fn render_survives_empty_trace() {
        let report = TraceSummary::from_events(vec![]).render();
        assert!(report.contains("0 events"));
    }

    fn deferred_freq(container: u32) -> TelemetryEvent {
        TelemetryEvent::Action {
            at: SimTime::from_micros(1),
            node: NodeId(0),
            container: ContainerId(container),
            origin: ActionOrigin::PacketHook,
            kind: ActionKind::SetFreq { level: 8 },
            outcome: ActionOutcome::Deferred,
        }
    }

    #[test]
    fn reconciled_trace_passes_the_audit() {
        // One accepted boost explains one observed DVFS change.
        let s = TraceSummary::from_events(vec![deferred_freq(2), alloc(50, 8), alloc(300, 8)]);
        assert_eq!(s.freq_changes.get(&2), Some(&1));
        assert_eq!(s.freq_deferred.get(&2), Some(&1));
        assert!(s.audit().is_empty(), "{:?}", s.audit());
    }

    #[test]
    fn unexplained_alloc_change_fails_the_audit() {
        // The level moved 0 -> 8 -> 0 (two changes) on one accepted
        // action: the second change has no action to explain it.
        let s = TraceSummary::from_events(vec![deferred_freq(2), alloc(50, 8), alloc(300, 0)]);
        assert_eq!(s.freq_changes.get(&2), Some(&2));
        let issues = s.audit();
        assert_eq!(issues.len(), 1, "{issues:?}");
        assert!(issues[0].contains("DVFS"));

        // Core changes without any landed set_cores.
        let core_events = vec![
            TelemetryEvent::Alloc {
                at: SimTime::from_micros(10),
                container: ContainerId(1),
                cores: 2,
                freq_level: 0,
                freq_ghz: 1.8,
            },
            TelemetryEvent::Alloc {
                at: SimTime::from_micros(20),
                container: ContainerId(1),
                cores: 6,
                freq_level: 0,
                freq_ghz: 1.8,
            },
        ];
        let s = TraceSummary::from_events(core_events);
        let issues = s.audit();
        assert_eq!(issues.len(), 1, "{issues:?}");
        assert!(issues[0].contains("core change"));
    }

    #[test]
    fn dropped_events_fail_the_audit() {
        let s = TraceSummary::from_events(vec![TelemetryEvent::Dropped {
            count: 2,
            family: None,
        }]);
        assert!(!s.audit().is_empty());
    }

    #[test]
    fn replica_lifecycle_builds_a_per_service_timeline() {
        use crate::event::ReplicaPhase;
        let life = |at_ms: u64, phase, active| TelemetryEvent::ReplicaLifecycle {
            at: SimTime::from_millis(at_ms),
            node: NodeId(0),
            container: ContainerId(5),
            service: ContainerId(1),
            replica: 2,
            phase,
            active,
        };
        let s = TraceSummary::from_events(vec![
            life(100, ReplicaPhase::Spawned, 2),
            life(500, ReplicaPhase::Draining, 1),
            life(600, ReplicaPhase::Retired, 1),
        ]);
        assert_eq!(s.replica_transitions.get("spawned"), Some(&1));
        assert_eq!(s.replica_transitions.get("draining"), Some(&1));
        assert_eq!(s.replica_transitions.get("retired"), Some(&1));
        assert_eq!(
            s.replica_timeline[&1],
            vec![
                (SimTime::from_millis(100), 2),
                (SimTime::from_millis(500), 1),
                (SimTime::from_millis(600), 1),
            ]
        );
        assert!(s.audit().is_empty(), "{:?}", s.audit());
        let report = s.render();
        assert!(report.contains("replica timeline"), "{report}");
        assert!(report.contains("spawned=1"), "{report}");
    }

    #[test]
    fn fault_events_are_counted_by_class() {
        let fault = |at_ms: u64, fault: &str, active| TelemetryEvent::Fault {
            at: SimTime::from_millis(at_ms),
            fault: fault.to_string(),
            target: "svc:1".to_string(),
            active,
        };
        let s = TraceSummary::from_events(vec![
            fault(100, "crash", true),
            fault(200, "crash", false),
            fault(300, "straggler", true),
            fault(350, "crash", true),
        ]);
        assert_eq!(s.fault_starts.get("crash"), Some(&2));
        assert_eq!(s.fault_starts.get("straggler"), Some(&1));
        assert!(s.audit().is_empty(), "{:?}", s.audit());
        let report = s.render();
        assert!(
            report.contains("faults injected: crash=2 straggler=1"),
            "{report}"
        );
    }

    #[test]
    fn json_summary_has_the_key_fields() {
        let s = TraceSummary::from_events(vec![
            deferred_freq(2),
            alloc(50, 8),
            TelemetryEvent::Dropped {
                count: 1,
                family: None,
            },
        ]);
        let v = s.to_json();
        assert_eq!(v.get("events").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("dropped").and_then(Value::as_u64), Some(1));
        let audit = v.get("audit").and_then(Value::as_array).unwrap();
        assert_eq!(audit.len(), 1);
    }
}
