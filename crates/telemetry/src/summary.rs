//! Trace aggregation behind the `sg-trace` binary.
//!
//! Consumes a stream of [`TelemetryEvent`]s and produces the four views
//! the tentpole asks for: per-container allocation timeline, the
//! boost→retire latency distribution, the decision-cycle action
//! histogram (by origin × kind × outcome), and the clamp/rejection
//! audit, plus the explicit drop count.

use crate::event::{ActionOutcome, TelemetryEvent};
use sg_core::time::SimTime;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One step in a container's allocation timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllocStep {
    /// When the allocation changed.
    pub at: SimTime,
    /// Cores after the change.
    pub cores: u32,
    /// DVFS level after the change.
    pub freq_level: u8,
    /// Frequency in GHz after the change.
    pub freq_ghz: f64,
}

/// Aggregated view of one trace.
#[derive(Debug, Default)]
pub struct TraceSummary {
    /// Total events consumed (excluding unparseable lines).
    pub events: u64,
    /// Allocation timeline per container, in trace order.
    pub timeline: BTreeMap<u32, Vec<AllocStep>>,
    /// Completed boost episodes (level left 0 → returned to 0) per
    /// container: durations in nanoseconds.
    pub boost_retire_ns: Vec<u64>,
    /// Boost episodes still open when the trace ended.
    pub open_boosts: u64,
    /// FirstResponder boosts observed, with min/sum of triggering slack.
    pub fr_boosts: u64,
    /// Most negative triggering slack seen (ns), if any boost fired.
    pub worst_slack_ns: Option<i64>,
    /// Action counts keyed by `(origin, kind, outcome)` wire names.
    pub action_histogram: BTreeMap<(String, String, String), u64>,
    /// Cross-node rejections per offending `(node, container)` pair.
    pub cross_node_rejections: BTreeMap<(u32, u32), u64>,
    /// Actions clamped to constraints (not cross-node).
    pub clamped: u64,
    /// Decision cycles observed (scoreboard events).
    pub cycles: u64,
    /// Window records observed.
    pub windows: u64,
    /// Events the recording pipeline itself dropped (from `Dropped`
    /// records in the trace).
    pub dropped: u64,
}

impl TraceSummary {
    /// Aggregate a stream of events.
    pub fn from_events<I: IntoIterator<Item = TelemetryEvent>>(events: I) -> Self {
        let mut s = TraceSummary::default();
        // Per-container open boost episode: (start, level) while level > 0.
        let mut open: BTreeMap<u32, SimTime> = BTreeMap::new();
        for event in events {
            s.events += 1;
            match event {
                TelemetryEvent::Action {
                    node,
                    container,
                    origin,
                    kind,
                    outcome,
                    ..
                } => {
                    *s.action_histogram
                        .entry((
                            origin.name().to_string(),
                            kind.name().to_string(),
                            outcome.name().to_string(),
                        ))
                        .or_insert(0) += 1;
                    match outcome {
                        ActionOutcome::RejectedCrossNode => {
                            *s.cross_node_rejections
                                .entry((node.0, container.0))
                                .or_insert(0) += 1;
                        }
                        ActionOutcome::Clamped => s.clamped += 1,
                        _ => {}
                    }
                }
                TelemetryEvent::Alloc {
                    at,
                    container,
                    cores,
                    freq_level,
                    freq_ghz,
                } => {
                    s.timeline.entry(container.0).or_default().push(AllocStep {
                        at,
                        cores,
                        freq_level,
                        freq_ghz,
                    });
                    if freq_level > 0 {
                        open.entry(container.0).or_insert(at);
                    } else if let Some(start) = open.remove(&container.0) {
                        s.boost_retire_ns
                            .push(at.as_nanos().saturating_sub(start.as_nanos()));
                    }
                }
                TelemetryEvent::FrBoost { slack_ns, .. } => {
                    s.fr_boosts += 1;
                    s.worst_slack_ns = Some(s.worst_slack_ns.map_or(slack_ns, |w| w.min(slack_ns)));
                }
                TelemetryEvent::Window { .. } => s.windows += 1,
                TelemetryEvent::Scoreboard { .. } => s.cycles += 1,
                TelemetryEvent::Dropped { count } => s.dropped += count,
            }
        }
        s.open_boosts = open.len() as u64;
        s.boost_retire_ns.sort_unstable();
        s
    }

    /// Percentile (0.0–1.0) of the boost→retire distribution, ns.
    pub fn boost_retire_percentile(&self, q: f64) -> Option<u64> {
        if self.boost_retire_ns.is_empty() {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0)) * (self.boost_retire_ns.len() - 1) as f64).round() as usize;
        Some(self.boost_retire_ns[rank])
    }

    /// Total cross-node rejections.
    pub fn cross_node_total(&self) -> u64 {
        self.cross_node_rejections.values().sum()
    }

    /// Render the human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "trace: {} events", self.events);
        let _ = writeln!(
            out,
            "  {} decision cycles, {} window records, {} FirstResponder boosts",
            self.cycles, self.windows, self.fr_boosts
        );
        if let Some(worst) = self.worst_slack_ns {
            let _ = writeln!(out, "  worst triggering slack: {worst} ns");
        }
        if self.dropped > 0 {
            let _ = writeln!(
                out,
                "  !! {} events dropped by the recording pipeline",
                self.dropped
            );
        }

        let _ = writeln!(out, "\nallocation timeline (per container):");
        if self.timeline.is_empty() {
            let _ = writeln!(out, "  (no allocation changes recorded)");
        }
        for (container, steps) in &self.timeline {
            let _ = writeln!(out, "  c{container}: {} changes", steps.len());
            for step in steps {
                let _ = writeln!(
                    out,
                    "    {:>12} ns  cores={:<3} level={:<2} ({:.2} GHz)",
                    step.at.as_nanos(),
                    step.cores,
                    step.freq_level,
                    step.freq_ghz
                );
            }
        }

        let _ = writeln!(out, "\nboost -> retire latency:");
        if self.boost_retire_ns.is_empty() {
            let _ = writeln!(out, "  (no completed boost episodes)");
        } else {
            let n = self.boost_retire_ns.len();
            let mean = self.boost_retire_ns.iter().sum::<u64>() / n as u64;
            let _ = writeln!(out, "  {n} completed episodes, mean {mean} ns");
            for (label, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("max", 1.0)] {
                if let Some(v) = self.boost_retire_percentile(q) {
                    let _ = writeln!(out, "  {label}: {v} ns");
                }
            }
        }
        if self.open_boosts > 0 {
            let _ = writeln!(out, "  ({} episodes still open at end)", self.open_boosts);
        }

        let _ = writeln!(out, "\naction histogram (origin / kind / outcome):");
        if self.action_histogram.is_empty() {
            let _ = writeln!(out, "  (no actions recorded)");
        }
        for ((origin, kind, outcome), count) in &self.action_histogram {
            let _ = writeln!(out, "  {origin:<12} {kind:<16} {outcome:<20} {count:>8}");
        }

        let _ = writeln!(out, "\nclamp audit:");
        let _ = writeln!(out, "  constraint-clamped actions: {}", self.clamped);
        let _ = writeln!(out, "  cross-node rejections: {}", self.cross_node_total());
        for ((node, container), count) in &self.cross_node_rejections {
            let _ = writeln!(out, "    node {node} -> c{container}: {count}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ActionKind, ActionOrigin, TelemetryEvent};
    use sg_core::ids::{ContainerId, NodeId};

    fn action(outcome: ActionOutcome) -> TelemetryEvent {
        TelemetryEvent::Action {
            at: SimTime::from_micros(5),
            node: NodeId(1),
            container: ContainerId(0),
            origin: ActionOrigin::Tick,
            kind: ActionKind::SetFreq { level: 3 },
            outcome,
        }
    }

    fn alloc(at_us: u64, level: u8) -> TelemetryEvent {
        TelemetryEvent::Alloc {
            at: SimTime::from_micros(at_us),
            container: ContainerId(2),
            cores: 2,
            freq_level: level,
            freq_ghz: 1.0 + level as f64,
        }
    }

    #[test]
    fn boost_retire_episodes_are_paired() {
        let s = TraceSummary::from_events(vec![
            alloc(100, 8), // boost opens
            alloc(150, 8), // still boosted: same episode
            alloc(300, 0), // retires: 200us episode
            alloc(400, 5), // opens again, never retires
        ]);
        assert_eq!(s.boost_retire_ns, vec![200_000]);
        assert_eq!(s.open_boosts, 1);
        assert_eq!(s.timeline[&2].len(), 4);
        assert_eq!(s.boost_retire_percentile(0.5), Some(200_000));
    }

    #[test]
    fn audit_counts_rejections_and_clamps_separately() {
        let s = TraceSummary::from_events(vec![
            action(ActionOutcome::Applied),
            action(ActionOutcome::Clamped),
            action(ActionOutcome::RejectedCrossNode),
            action(ActionOutcome::RejectedCrossNode),
            TelemetryEvent::Dropped { count: 3 },
        ]);
        assert_eq!(s.clamped, 1);
        assert_eq!(s.cross_node_total(), 2);
        assert_eq!(s.cross_node_rejections[&(1, 0)], 2);
        assert_eq!(s.dropped, 3);
        let report = s.render();
        assert!(report.contains("cross-node rejections: 2"));
        assert!(report.contains("dropped"));
    }

    #[test]
    fn render_survives_empty_trace() {
        let report = TraceSummary::from_events(vec![]).render();
        assert!(report.contains("0 events"));
    }
}
