//! Mergeable cluster-scale aggregation: latency digests and
//! heavy-hitter sketches.
//!
//! Every summary the single-stream telemetry pillars produce (span
//! reports, metrics timelines, whole-run percentile passes) assumes one
//! process saw every event. Sharded lookahead and the multi-process
//! `sg-cluster` deployment break that assumption: each shard/node must
//! keep its *own* bounded summary, and the cluster view must be the
//! **merge** of the per-shard states — with the merge exact, so the
//! answer does not depend on how many shards there were or in which
//! order they were combined.
//!
//! Everything in this module is therefore a commutative monoid under
//! `merge`:
//!
//! * [`LatencyDigest`] — a sparse DDSketch-style log-bucket quantile
//!   digest over the shared [`sg_core::logbucket`] scheme. Bucketing is
//!   pure integer math and state is canonically ordered
//!   (`BTreeMap<bucket, count>`), so merging any partition of a sample
//!   stream in any order yields **byte-identical** state (pinned by the
//!   proptest suite in `tests/agg_props.rs`). Quantile error is
//!   one-sided, bounded by γ = `1/2^(sig_bits-1)`
//!   ([`LatencyDigest::relative_error`]).
//! * [`TopK`] — a SpaceSaving heavy-hitter sketch over per-container
//!   QoS-violation loss. Stream updates evict deterministically
//!   (min weight, largest key on ties); `merge` sums the full key union
//!   *without* truncating, so it too is exact/associative/commutative —
//!   truncation to k happens only at query time ([`TopK::top`]).
//! * [`crate::slo::SloTracker`] — windowed good/bad counts for SLO burn
//!   rates, merged the same way.
//!
//! [`AggRuntime`] bundles the three per node behind a mutex shard, is
//! wired into both substrates (the simulator records synchronously at
//! root completion; the live backend records on the delay-line thread
//! and the drainer-side teardown merges), snapshots per-node state into
//! [`TelemetryEvent::Digest`] / [`TelemetryEvent::Slo`] /
//! [`TelemetryEvent::TopK`] events on the metrics stream, and renders
//! the `sg_slo_*` Prometheus series for the live scrape endpoint.

use crate::critical::LossClass;
use crate::event::TelemetryEvent;
use crate::slo::{SloConfig, SloTracker};
use sg_core::ids::{ContainerId, NodeId};
use sg_core::logbucket;
use sg_core::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Sparse mergeable log-bucket latency digest.
///
/// Same bucket layout and quantile semantics as the load generator's
/// dense `LatencyHistogram` (both sit on [`sg_core::logbucket`]), but
/// stored sparsely so an idle shard costs nothing and the wire form
/// stays small. For the same `sig_bits` and the same recorded samples,
/// `percentile` returns **exactly** what `LatencyHistogram::percentile`
/// returns — the conformance suite pins this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyDigest {
    sig_bits: u32,
    /// Canonically ordered sparse counts: bucket index → samples.
    buckets: BTreeMap<u32, u64>,
    total: u64,
    min_ns: u64,
    max_ns: u64,
    /// Saturating sum (saturation keeps merge associative/commutative).
    sum_ns: u64,
}

impl LatencyDigest {
    /// Empty digest with `sig_bits` significant bits.
    pub fn new(sig_bits: u32) -> Self {
        logbucket::assert_sig_bits(sig_bits);
        LatencyDigest {
            sig_bits,
            buckets: BTreeMap::new(),
            total: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            sum_ns: 0,
        }
    }

    /// Default resolution (6 significant bits, γ = 1/32 ≈ 3.1%).
    pub fn with_default_resolution() -> Self {
        Self::new(6)
    }

    /// Rebuild a digest from its wire parts (the `digest` JSONL event).
    /// Rejects invalid resolutions, out-of-range buckets, and count
    /// sums that disagree with `total`.
    pub fn from_parts(
        sig_bits: u32,
        buckets: Vec<(u32, u64)>,
        min_ns: u64,
        max_ns: u64,
        sum_ns: u64,
    ) -> Result<Self, String> {
        if !(logbucket::MIN_SIG_BITS..=logbucket::MAX_SIG_BITS).contains(&sig_bits) {
            return Err(format!("digest sig_bits {sig_bits} out of range"));
        }
        let limit = logbucket::bucket_count(sig_bits) as u32;
        let mut map = BTreeMap::new();
        let mut total = 0u64;
        for (b, c) in buckets {
            if b >= limit {
                return Err(format!(
                    "digest bucket {b} out of range for {sig_bits} bits"
                ));
            }
            if c == 0 {
                continue;
            }
            if map.insert(b, c).is_some() {
                return Err(format!("digest bucket {b} repeated"));
            }
            total = total.saturating_add(c);
        }
        Ok(LatencyDigest {
            sig_bits,
            buckets: map,
            total,
            min_ns: if total == 0 { u64::MAX } else { min_ns },
            max_ns,
            sum_ns,
        })
    }

    /// Resolution in significant bits.
    pub fn sig_bits(&self) -> u32 {
        self.sig_bits
    }

    /// One-sided relative error bound γ of reported quantiles.
    pub fn relative_error(&self) -> f64 {
        logbucket::relative_error(self.sig_bits)
    }

    /// Record one latency.
    #[inline]
    pub fn record(&mut self, latency: SimDuration) {
        let v = latency.as_nanos();
        let b = logbucket::bucket_of(self.sig_bits, v) as u32;
        *self.buckets.entry(b).or_insert(0) += 1;
        self.total += 1;
        self.min_ns = self.min_ns.min(v);
        self.max_ns = self.max_ns.max(v);
        self.sum_ns = self.sum_ns.saturating_add(v);
    }

    /// Total samples recorded.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact minimum recorded value.
    pub fn min(&self) -> Option<SimDuration> {
        (self.total > 0).then(|| SimDuration::from_nanos(self.min_ns))
    }

    /// Exact maximum recorded value.
    pub fn max(&self) -> Option<SimDuration> {
        (self.total > 0).then(|| SimDuration::from_nanos(self.max_ns))
    }

    /// Mean of recorded values (exact unless `sum_ns` saturated).
    pub fn mean(&self) -> Option<SimDuration> {
        (self.total > 0).then(|| SimDuration::from_nanos(self.sum_ns / self.total))
    }

    /// Quantile `q` in `[0,100]`: upper bucket edge clamped to the
    /// observed maximum — identical semantics (and identical output for
    /// identical inputs) to `LatencyHistogram::percentile`.
    pub fn percentile(&self, q: f64) -> Option<SimDuration> {
        if self.total == 0 {
            return None;
        }
        assert!((0.0..=100.0).contains(&q));
        let rank = ((q / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (&b, &c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return Some(SimDuration::from_nanos(
                    logbucket::bucket_high(self.sig_bits, b as usize).min(self.max_ns),
                ));
            }
        }
        Some(SimDuration::from_nanos(self.max_ns))
    }

    /// Merge another digest (must share `sig_bits`). Exact: pointwise
    /// count addition over canonically ordered state, so any merge order
    /// over any partition of the samples yields byte-identical state.
    pub fn merge(&mut self, other: &LatencyDigest) {
        assert_eq!(self.sig_bits, other.sig_bits, "digest resolution mismatch");
        for (&b, &c) in &other.buckets {
            *self.buckets.entry(b).or_insert(0) += c;
        }
        self.total += other.total;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
    }

    /// Wire parts `(min_ns, max_ns, sum_ns)` (min is `u64::MAX` when
    /// empty; writers normalize to 0 on the wire).
    pub fn bounds(&self) -> (u64, u64, u64) {
        (self.min_ns, self.max_ns, self.sum_ns)
    }

    /// Sparse `(bucket, count)` pairs in canonical (ascending) order.
    pub fn bucket_counts(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.buckets.iter().map(|(&b, &c)| (b, c))
    }
}

/// Pack a heavy-hitter key from a container and an optional loss class.
///
/// Layout: `container << 3 | class_code` (code 0 = whole-request loss,
/// 1–4 = [`LossClass::code`]). Keys order first by container, then by
/// class, which makes tie-breaking and report ordering deterministic.
pub fn topk_key(container: ContainerId, class: Option<LossClass>) -> u64 {
    ((container.0 as u64) << 3) | class.map_or(0, |c| c.code() as u64)
}

/// Unpack a heavy-hitter key into `(container, class)`.
pub fn topk_unpack(key: u64) -> (ContainerId, Option<LossClass>) {
    (
        ContainerId((key >> 3) as u32),
        LossClass::from_code((key & 0x7) as u8),
    )
}

/// One heavy-hitter entry: estimated weight and overestimation bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopKEntry {
    /// Packed key (see [`topk_key`]).
    pub key: u64,
    /// Estimated total weight charged to this key (upper bound on the
    /// true weight; exact when `err == 0`).
    pub weight: u64,
    /// SpaceSaving overestimation bound: true weight ≥ `weight - err`.
    pub err: u64,
}

/// SpaceSaving top-k heavy-hitter sketch with an exact merge.
///
/// Stream updates are classic SpaceSaving: at most `capacity` keys are
/// tracked; when a new key arrives at a full sketch, the minimum-weight
/// entry is evicted (ties broken toward the **largest** key, so the
/// smallest key survives) and the newcomer inherits its weight as the
/// error bound. `merge` deliberately does **not** re-truncate: it sums
/// weights and errors over the key union, which keeps the operation
/// associative and commutative (and the merged state byte-identical for
/// any merge order). Truncation to the top k happens only in [`top`].
///
/// [`top`]: TopK::top
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopK {
    capacity: usize,
    /// key → (weight, err), canonically ordered.
    entries: BTreeMap<u64, (u64, u64)>,
}

impl TopK {
    /// Empty sketch tracking at most `capacity` keys under stream
    /// updates (`capacity >= 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "top-k capacity must be at least 1");
        TopK {
            capacity,
            entries: BTreeMap::new(),
        }
    }

    /// Stream capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of keys currently tracked (may exceed `capacity` after a
    /// merge; see type docs).
    pub fn tracked(&self) -> usize {
        self.entries.len()
    }

    /// Rebuild a sketch from wire parts (the `topk` JSONL event).
    pub fn from_parts(capacity: usize, entries: Vec<TopKEntry>) -> Result<Self, String> {
        if capacity < 1 {
            return Err("topk capacity must be at least 1".into());
        }
        let mut map = BTreeMap::new();
        for e in entries {
            if map.insert(e.key, (e.weight, e.err)).is_some() {
                return Err(format!("topk key {} repeated", e.key));
            }
        }
        Ok(TopK {
            capacity,
            entries: map,
        })
    }

    /// Charge `weight` to `key` (SpaceSaving update).
    pub fn observe(&mut self, key: u64, weight: u64) {
        if let Some((w, _)) = self.entries.get_mut(&key) {
            *w = w.saturating_add(weight);
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.insert(key, (weight, 0));
            return;
        }
        // Evict the min-weight entry; ties break toward the largest key
        // (deterministic regardless of insertion history).
        let (&victim, &(vw, _)) = self
            .entries
            .iter()
            .min_by(|a, b| {
                (a.1 .0, std::cmp::Reverse(*a.0)).cmp(&(b.1 .0, std::cmp::Reverse(*b.0)))
            })
            .expect("capacity >= 1");
        self.entries.remove(&victim);
        self.entries.insert(key, (vw.saturating_add(weight), vw));
    }

    /// Merge another sketch: pointwise sum over the key union, no
    /// truncation. Exact, associative, commutative.
    pub fn merge(&mut self, other: &TopK) {
        assert_eq!(self.capacity, other.capacity, "top-k capacity mismatch");
        for (&k, &(w, e)) in &other.entries {
            let entry = self.entries.entry(k).or_insert((0, 0));
            entry.0 = entry.0.saturating_add(w);
            entry.1 = entry.1.saturating_add(e);
        }
    }

    /// The top `k` entries, sorted by weight descending; ties break by
    /// error ascending (tighter estimates first), then key ascending.
    pub fn top(&self, k: usize) -> Vec<TopKEntry> {
        let mut all: Vec<TopKEntry> = self
            .entries
            .iter()
            .map(|(&key, &(weight, err))| TopKEntry { key, weight, err })
            .collect();
        all.sort_by(|a, b| {
            (std::cmp::Reverse(a.weight), a.err, a.key).cmp(&(
                std::cmp::Reverse(b.weight),
                b.err,
                b.key,
            ))
        });
        all.truncate(k);
        all
    }

    /// All tracked entries in canonical key order (the wire form).
    pub fn entries(&self) -> impl Iterator<Item = TopKEntry> + '_ {
        self.entries
            .iter()
            .map(|(&key, &(weight, err))| TopKEntry { key, weight, err })
    }
}

/// Configuration for a per-node aggregation runtime.
#[derive(Debug, Clone)]
pub struct AggConfig {
    /// QoS deadline: completions above this are SLO violations and feed
    /// the heavy-hitter sketch with their excess latency.
    pub qos: SimDuration,
    /// Digest resolution (significant bits).
    pub sig_bits: u32,
    /// Per-node heavy-hitter stream capacity.
    pub topk_capacity: usize,
    /// SLO burn-rate windows and thresholds.
    pub slo: SloConfig,
}

impl AggConfig {
    /// Defaults (6-bit digests, 8-entry sketches, SRE-style burn
    /// windows) around the given QoS deadline.
    pub fn new(qos: SimDuration) -> Self {
        AggConfig {
            qos,
            sig_bits: 6,
            topk_capacity: 8,
            slo: SloConfig::default(),
        }
    }
}

/// One node's aggregation state.
#[derive(Debug)]
struct NodeShard {
    digest: LatencyDigest,
    topk: TopK,
    slo: SloTracker,
}

/// Merged cluster-wide view of all node shards.
#[derive(Debug, Clone)]
pub struct ClusterAgg {
    /// Merged latency digest.
    pub digest: LatencyDigest,
    /// Merged heavy-hitter sketch.
    pub topk: TopK,
    /// Merged SLO tracker.
    pub slo: SloTracker,
}

/// Per-node aggregators behind mutex shards, shared by a substrate's
/// completion path, its metrics sampler, and (live) the scrape server.
///
/// Contention is per *node*, and both substrates complete a given
/// node's requests from one thread at a time, so the mutexes are
/// effectively uncontended; they exist so the live delay-line thread,
/// the sampler thread, and the scrape server can share the state.
#[derive(Debug)]
pub struct AggRuntime {
    cfg: AggConfig,
    shards: Vec<Mutex<NodeShard>>,
}

impl AggRuntime {
    /// Runtime with one shard per node (`nodes` ≥ 1).
    pub fn new(cfg: AggConfig, nodes: usize) -> Self {
        assert!(nodes >= 1, "at least one node shard");
        let shards = (0..nodes)
            .map(|_| {
                Mutex::new(NodeShard {
                    digest: LatencyDigest::new(cfg.sig_bits),
                    topk: TopK::new(cfg.topk_capacity),
                    slo: SloTracker::new(cfg.slo.clone()),
                })
            })
            .collect();
        AggRuntime { cfg, shards }
    }

    /// The configuration this runtime was built with.
    pub fn config(&self) -> &AggConfig {
        &self.cfg
    }

    /// Number of node shards.
    pub fn nodes(&self) -> usize {
        self.shards.len()
    }

    /// Record one completed request: `container` (the root replica slot)
    /// on `node`, completing at `at` with end-to-end `latency`.
    pub fn record(&self, node: NodeId, container: ContainerId, at: SimTime, latency: SimDuration) {
        let idx = node.index().min(self.shards.len() - 1);
        let mut shard = self.shards[idx].lock().unwrap();
        shard.digest.record(latency);
        let bad = latency > self.cfg.qos;
        shard.slo.record(at, bad);
        if bad {
            let loss = latency.as_nanos() - self.cfg.qos.as_nanos();
            shard.topk.observe(topk_key(container, None), loss);
        }
    }

    /// Charge critical-path loss for `container`/`class` on `node`
    /// (span-side attribution; see [`crate::critical`]).
    pub fn attribute(&self, node: NodeId, container: ContainerId, class: LossClass, loss_ns: u64) {
        let idx = node.index().min(self.shards.len() - 1);
        let mut shard = self.shards[idx].lock().unwrap();
        shard
            .topk
            .observe(topk_key(container, Some(class)), loss_ns);
    }

    /// Snapshot one node's state as cumulative telemetry events
    /// (`digest` + `slo`, plus `topk` when the sketch is non-empty).
    pub fn node_events(&self, node: NodeId, at: SimTime) -> Vec<TelemetryEvent> {
        let idx = node.index().min(self.shards.len() - 1);
        let shard = self.shards[idx].lock().unwrap();
        let mut out = Vec::with_capacity(3);
        if shard.digest.is_empty() && shard.slo.total() == 0 {
            return out;
        }
        out.push(TelemetryEvent::Digest {
            at,
            node,
            digest: shard.digest.clone(),
        });
        out.push(TelemetryEvent::Slo {
            at,
            node,
            qos_ns: self.cfg.qos.as_nanos(),
            total: shard.slo.total(),
            bad: shard.slo.bad(),
        });
        if shard.topk.tracked() > 0 {
            out.push(TelemetryEvent::TopK {
                at,
                node,
                capacity: shard.topk.capacity() as u32,
                entries: shard.topk.entries().collect(),
            });
        }
        out
    }

    /// Snapshot every node's state (teardown emission; also the live
    /// sampler sweep).
    pub fn all_node_events(&self, at: SimTime) -> Vec<TelemetryEvent> {
        (0..self.shards.len())
            .flat_map(|n| self.node_events(NodeId(n as u32), at))
            .collect()
    }

    /// Merge every node shard into one cluster view. Per the merge
    /// contract the result is independent of node order.
    pub fn merged(&self) -> ClusterAgg {
        let mut digest = LatencyDigest::new(self.cfg.sig_bits);
        let mut topk = TopK::new(self.cfg.topk_capacity);
        let mut slo = SloTracker::new(self.cfg.slo.clone());
        for shard in &self.shards {
            let s = shard.lock().unwrap();
            digest.merge(&s.digest);
            topk.merge(&s.topk);
            slo.merge(&s.slo);
        }
        ClusterAgg { digest, topk, slo }
    }

    /// Append the `sg_slo_*` Prometheus series (text exposition 0.0.4)
    /// for the scrape endpoint: per-node request/violation counters plus
    /// cluster-wide burn rates, budget, and alert gauges.
    pub fn render_prometheus_into(&self, body: &mut String) {
        use std::fmt::Write;
        body.push_str(
            "# HELP sg_slo_requests_total Requests observed by the SLO tracker.\n\
             # TYPE sg_slo_requests_total counter\n",
        );
        for (n, shard) in self.shards.iter().enumerate() {
            let s = shard.lock().unwrap();
            let _ = writeln!(
                body,
                "sg_slo_requests_total{{node=\"{n}\"}} {}",
                s.slo.total()
            );
        }
        body.push_str(
            "# HELP sg_slo_violations_total Requests beyond the QoS deadline.\n\
             # TYPE sg_slo_violations_total counter\n",
        );
        for (n, shard) in self.shards.iter().enumerate() {
            let s = shard.lock().unwrap();
            let _ = writeln!(
                body,
                "sg_slo_violations_total{{node=\"{n}\"}} {}",
                s.slo.bad()
            );
        }
        let merged = self.merged();
        let verdict = merged.slo.verdict_at_last();
        body.push_str(
            "# HELP sg_slo_burn_rate Error-budget burn rate over the alert windows.\n\
             # TYPE sg_slo_burn_rate gauge\n",
        );
        let _ = writeln!(
            body,
            "sg_slo_burn_rate{{window=\"fast\"}} {}",
            verdict.fast.unwrap_or(0.0)
        );
        let _ = writeln!(
            body,
            "sg_slo_burn_rate{{window=\"slow\"}} {}",
            verdict.slow.unwrap_or(0.0)
        );
        body.push_str(
            "# HELP sg_slo_error_budget_remaining Fraction of the error budget left.\n\
             # TYPE sg_slo_error_budget_remaining gauge\n",
        );
        let _ = writeln!(
            body,
            "sg_slo_error_budget_remaining {}",
            verdict.budget_remaining
        );
        body.push_str(
            "# HELP sg_slo_alert Multi-window burn alerts (1 = firing).\n\
             # TYPE sg_slo_alert gauge\n",
        );
        let _ = writeln!(
            body,
            "sg_slo_alert{{severity=\"fast\"}} {}",
            u8::from(verdict.fast_alert)
        );
        let _ = writeln!(
            body,
            "sg_slo_alert{{severity=\"slow\"}} {}",
            u8::from(verdict.slow_alert)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    #[test]
    fn digest_matches_dense_histogram_semantics() {
        // Mirrors LatencyHistogram::percentile on the same data.
        let mut d = LatencyDigest::with_default_resolution();
        for v in 1..=10_000u64 {
            d.record(SimDuration::from_nanos(v * 1_000));
        }
        for q in [50.0, 90.0, 99.0, 99.9] {
            let exact = ((q / 100.0) * 10_000f64).ceil() as u64 * 1_000;
            let got = d.percentile(q).unwrap().as_nanos();
            assert!(got >= exact, "q{q} understates");
            let rel = (got - exact) as f64 / exact as f64;
            assert!(rel <= d.relative_error(), "q{q} rel {rel}");
        }
    }

    #[test]
    fn digest_single_value_is_exact() {
        let mut d = LatencyDigest::with_default_resolution();
        d.record(SimDuration::from_nanos(1_000_003));
        for q in [0.0, 50.0, 100.0] {
            assert_eq!(d.percentile(q).unwrap().as_nanos(), 1_000_003);
        }
    }

    #[test]
    fn digest_merge_is_order_independent() {
        let values: Vec<u64> = (0..500).map(|i| (i * 7919 + 13) % 2_000_000).collect();
        let mut whole = LatencyDigest::new(6);
        let mut a = LatencyDigest::new(6);
        let mut b = LatencyDigest::new(6);
        for (i, &v) in values.iter().enumerate() {
            whole.record(SimDuration::from_nanos(v));
            if i % 3 == 0 {
                a.record(SimDuration::from_nanos(v));
            } else {
                b.record(SimDuration::from_nanos(v));
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab, whole);
    }

    #[test]
    fn digest_wire_roundtrip() {
        let mut d = LatencyDigest::new(6);
        for v in [3u64, 64, 65, 100_000, u64::MAX] {
            d.record(SimDuration::from_nanos(v));
        }
        let (min_ns, max_ns, sum_ns) = d.bounds();
        let back =
            LatencyDigest::from_parts(6, d.bucket_counts().collect(), min_ns, max_ns, sum_ns)
                .unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn digest_from_parts_rejects_garbage() {
        assert!(LatencyDigest::from_parts(1, vec![], 0, 0, 0).is_err());
        assert!(LatencyDigest::from_parts(6, vec![(u32::MAX, 1)], 0, 0, 0).is_err());
        assert!(LatencyDigest::from_parts(6, vec![(1, 1), (1, 2)], 0, 0, 0).is_err());
    }

    #[test]
    fn topk_tracks_heavy_hitters() {
        let mut t = TopK::new(3);
        for _ in 0..100 {
            t.observe(topk_key(ContainerId(1), None), 10);
        }
        for _ in 0..50 {
            t.observe(topk_key(ContainerId(2), Some(LossClass::PoolQueue)), 10);
        }
        for i in 0..20 {
            t.observe(topk_key(ContainerId(100 + i), None), 1);
        }
        let top = t.top(2);
        assert_eq!(topk_unpack(top[0].key).0, ContainerId(1));
        assert_eq!(
            topk_unpack(top[1].key),
            (ContainerId(2), Some(LossClass::PoolQueue))
        );
        // The heavy hitters' estimates are exact (never evicted).
        assert_eq!(top[0].weight, 1000);
        assert_eq!(top[0].err, 0);
    }

    #[test]
    fn topk_eviction_is_deterministic() {
        let mut a = TopK::new(2);
        a.observe(10, 5);
        a.observe(20, 5);
        a.observe(30, 1); // evicts key 20 (min weight ties → largest key)
        assert!(a.entries.contains_key(&10));
        assert!(a.entries.contains_key(&30));
        assert_eq!(a.entries[&30], (6, 5));
    }

    #[test]
    fn topk_merge_is_exact_and_order_independent() {
        let mut a = TopK::new(4);
        let mut b = TopK::new(4);
        for i in 0..10u64 {
            a.observe(i % 5, i + 1);
            b.observe(i % 7, 2 * i + 1);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        // Union may exceed stream capacity — truncation only at query.
        assert!(ab.tracked() >= 5);
        assert_eq!(ab.top(4).len(), 4);
    }

    #[test]
    fn key_packing_roundtrips() {
        for c in [0u32, 1, 77, u32::MAX] {
            for class in [
                None,
                Some(LossClass::PoolQueue),
                Some(LossClass::Service),
                Some(LossClass::PreBoostFreq),
                Some(LossClass::Network),
            ] {
                let key = topk_key(ContainerId(c), class);
                assert_eq!(topk_unpack(key), (ContainerId(c), class));
            }
        }
    }

    #[test]
    fn runtime_records_and_merges() {
        let rt = AggRuntime::new(AggConfig::new(us(500)), 2);
        rt.record(NodeId(0), ContainerId(0), SimTime::from_millis(1), us(100));
        rt.record(NodeId(1), ContainerId(5), SimTime::from_millis(2), us(900));
        let m = rt.merged();
        assert_eq!(m.digest.len(), 2);
        assert_eq!(m.slo.total(), 2);
        assert_eq!(m.slo.bad(), 1);
        let top = m.topk.top(1);
        assert_eq!(topk_unpack(top[0].key).0, ContainerId(5));
        assert_eq!(top[0].weight, us(400).as_nanos());
    }

    #[test]
    fn runtime_renders_slo_series() {
        let rt = AggRuntime::new(AggConfig::new(us(500)), 1);
        rt.record(NodeId(0), ContainerId(0), SimTime::from_millis(1), us(900));
        let mut body = String::new();
        rt.render_prometheus_into(&mut body);
        assert!(body.contains("sg_slo_requests_total{node=\"0\"} 1"));
        assert!(body.contains("sg_slo_violations_total{node=\"0\"} 1"));
        assert!(body.contains("sg_slo_burn_rate{window=\"fast\"}"));
        assert!(body.contains("sg_slo_error_budget_remaining"));
        assert!(body.contains("sg_slo_alert{severity=\"fast\"} 1"));
    }
}
