//! Metrics registry and time-series samples — the third telemetry pillar.
//!
//! The decision trace (PR 2) records *events* and the span stream (PR 3)
//! records *requests*; this module records *state*: typed gauge/counter
//! series keyed by `(node, container, metric)`, sampled on a fixed
//! cadence. The simulator samples synchronously at every decision cycle
//! (`Simulation::with_metrics`), so a metrics file is byte-identical
//! across reruns of the same seed; the live backend samples from a
//! dedicated low-priority thread through the bounded relay ring
//! (drop-not-block, drops testified in-stream per family).
//!
//! Each sample is one [`crate::TelemetryEvent::Metric`] line in the
//! shared JSONL wire format, preceded by a
//! [`crate::TelemetryEvent::MetricsMeta`] header carrying
//! [`METRICS_SCHEMA_VERSION`]. The [`MetricsRegistry`] is a
//! current-value view over the same samples — the live backend keeps one
//! behind the relay and serves it as Prometheus text exposition
//! (`sg-loadtest --metrics-listen`).

use crate::event::TelemetryEvent;
use crate::sink::TelemetrySink;
use sg_core::ids::{ContainerId, NodeId};
use sg_core::time::SimTime;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Version stamped into the `metrics_meta` header line. Bump when the
/// set of metric names or their meanings changes incompatibly.
/// Version 2 adds the `replicas` gauge (horizontal scaling).
/// Version 3 adds the cumulative aggregation snapshots riding the same
/// stream: `digest`, `slo`, and `topk` lines (see [`crate::agg`]).
pub const METRICS_SCHEMA_VERSION: u32 = 3;

/// How a series behaves over time (drives the Prometheus `# TYPE` line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Instantaneous value; may move in any direction.
    Gauge,
    /// Monotonically non-decreasing total.
    Counter,
}

impl MetricKind {
    /// Prometheus type name.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Gauge => "gauge",
            MetricKind::Counter => "counter",
        }
    }
}

/// Identity of one internal-state series for a container.
///
/// These are exactly the quantities the paper plots over time (Fig. 7/8)
/// or feeds into the Escalator's Table II scoring: the allocation state,
/// the Eq. 2/3 window metrics, the learned sensitivity arms, the hidden
/// connection-pool state, and the per-window slack distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MetricId {
    /// Cores currently allocated (gauge).
    Cores,
    /// Current DVFS level (gauge; 0 = base frequency).
    FreqLevel,
    /// FirstResponder packet-hook boosts accepted for this container
    /// since the run started (counter) — boosts stay visible here even
    /// after the level retires between two samples.
    FrBoosts,
    /// Mean `execMetric` (Eq. 2) of the last completed window, ns (gauge).
    ExecMetric,
    /// `queueBuildup` (Eq. 3) of the last completed window (gauge).
    QueueBuildup,
    /// Requests completed in the last window (gauge).
    WindowRequests,
    /// Requests that arrived carrying an `upscale` hint, cumulative
    /// (counter).
    UpscaleHints,
    /// Learned upscale sensitivity at this core-count arm (gauge; only
    /// emitted for arms the sensitivity matrix has observed).
    Sensitivity(u8),
    /// Connections in use, summed over the container's egress pools
    /// (gauge).
    PoolInUse,
    /// Callers queued waiting for a free connection, summed over the
    /// container's egress pools (gauge).
    PoolWaiters,
    /// Acquires that had to queue, cumulative over the container's egress
    /// pools (counter).
    PoolQueuedTotal,
    /// p50 of per-packet slack observed since the previous sample, ns
    /// (gauge; negative = behind expected progress).
    SlackP50,
    /// p99 (worst-biased) of per-packet slack observed since the previous
    /// sample, ns (gauge).
    SlackP99,
    /// Active replicas of the service group (gauge; emitted on the
    /// group's primary container only).
    Replicas,
}

impl MetricId {
    /// Stable wire name of the metric.
    pub fn name(self) -> &'static str {
        match self {
            MetricId::Cores => "cores",
            MetricId::FreqLevel => "freq_level",
            MetricId::FrBoosts => "fr_boosts",
            MetricId::ExecMetric => "exec_metric_ns",
            MetricId::QueueBuildup => "queue_buildup",
            MetricId::WindowRequests => "window_requests",
            MetricId::UpscaleHints => "upscale_hints",
            MetricId::Sensitivity(_) => "sensitivity",
            MetricId::PoolInUse => "pool_in_use",
            MetricId::PoolWaiters => "pool_waiters",
            MetricId::PoolQueuedTotal => "pool_queued_total",
            MetricId::SlackP50 => "slack_p50_ns",
            MetricId::SlackP99 => "slack_p99_ns",
            MetricId::Replicas => "replicas",
        }
    }

    /// The core-count arm, for the per-arm sensitivity series.
    pub fn arm(self) -> Option<u8> {
        match self {
            MetricId::Sensitivity(arm) => Some(arm),
            _ => None,
        }
    }

    /// Gauge or counter.
    pub fn kind(self) -> MetricKind {
        match self {
            MetricId::FrBoosts | MetricId::UpscaleHints | MetricId::PoolQueuedTotal => {
                MetricKind::Counter
            }
            _ => MetricKind::Gauge,
        }
    }

    /// Decode from the wire name (+ optional `arm` field).
    pub fn from_wire(name: &str, arm: Option<u8>) -> Option<MetricId> {
        Some(match (name, arm) {
            ("cores", None) => MetricId::Cores,
            ("freq_level", None) => MetricId::FreqLevel,
            ("fr_boosts", None) => MetricId::FrBoosts,
            ("exec_metric_ns", None) => MetricId::ExecMetric,
            ("queue_buildup", None) => MetricId::QueueBuildup,
            ("window_requests", None) => MetricId::WindowRequests,
            ("upscale_hints", None) => MetricId::UpscaleHints,
            ("sensitivity", Some(arm)) => MetricId::Sensitivity(arm),
            ("pool_in_use", None) => MetricId::PoolInUse,
            ("pool_waiters", None) => MetricId::PoolWaiters,
            ("pool_queued_total", None) => MetricId::PoolQueuedTotal,
            ("slack_p50_ns", None) => MetricId::SlackP50,
            ("slack_p99_ns", None) => MetricId::SlackP99,
            ("replicas", None) => MetricId::Replicas,
            _ => return None,
        })
    }
}

/// One sampled point of one series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricSample {
    /// Sample time (sweep start on the live sampler).
    pub at: SimTime,
    /// Node hosting the container.
    pub node: NodeId,
    /// The container the series describes.
    pub container: ContainerId,
    /// Which series.
    pub metric: MetricId,
    /// The sampled value. Counters are carried as their running total.
    pub value: f64,
}

impl MetricSample {
    /// Clamp non-finite values (e.g. `queueBuildup = ∞` when a window
    /// was pure connection wait) to something JSON can carry.
    pub fn sanitized(mut self) -> Self {
        if self.value.is_nan() {
            self.value = 0.0;
        } else if self.value.is_infinite() {
            self.value = if self.value > 0.0 { 1e12 } else { -1e12 };
        }
        self
    }
}

/// Current-value store over every series seen, keyed by
/// `(node, container, metric)`.
///
/// Implements [`TelemetrySink`], ignoring every non-`Metric` event, so it
/// can sit directly behind a relay/demux: the live driver tees the
/// metrics stream into both the JSONL file and a registry, and the
/// scrape listener renders the registry on demand.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    current: Mutex<BTreeMap<(u32, u32, MetricId), f64>>,
    samples: AtomicU64,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty registry, pre-wrapped for sharing.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Record one sample (last write wins per series).
    pub fn record(&self, sample: &MetricSample) {
        let sample = sample.sanitized();
        self.samples.fetch_add(1, Ordering::Relaxed);
        self.current
            .lock()
            .expect("MetricsRegistry poisoned")
            .insert(
                (sample.node.0, sample.container.0, sample.metric),
                sample.value,
            );
    }

    /// Samples recorded so far (across all series).
    pub fn samples(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }

    /// Distinct series seen so far.
    pub fn series(&self) -> usize {
        self.current.lock().expect("MetricsRegistry poisoned").len()
    }

    /// Latest value of one series, if it has been sampled.
    pub fn get(&self, node: NodeId, container: ContainerId, metric: MetricId) -> Option<f64> {
        self.current
            .lock()
            .expect("MetricsRegistry poisoned")
            .get(&(node.0, container.0, metric))
            .copied()
    }

    /// Render the whole registry as Prometheus text exposition
    /// (version 0.0.4): `# TYPE` per metric family, one labelled sample
    /// per series, metric names prefixed `sg_`.
    pub fn render_prometheus(&self) -> String {
        let current = self.current.lock().expect("MetricsRegistry poisoned");
        // Group series under their metric family so the TYPE comment is
        // emitted once per family.
        let mut families: BTreeMap<&'static str, (MetricKind, Vec<String>)> = BTreeMap::new();
        for (&(node, container, metric), &value) in current.iter() {
            let entry = families
                .entry(metric.name())
                .or_insert_with(|| (metric.kind(), Vec::new()));
            let labels = match metric.arm() {
                Some(arm) => {
                    format!("node=\"{node}\",container=\"{container}\",arm=\"{arm}\"")
                }
                None => format!("node=\"{node}\",container=\"{container}\""),
            };
            entry
                .1
                .push(format!("sg_{}{{{labels}}} {value}", metric.name()));
        }
        let mut out = String::new();
        for (name, (kind, lines)) in families {
            out.push_str(&format!("# TYPE sg_{name} {}\n", kind.name()));
            for line in lines {
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }
}

impl TelemetrySink for MetricsRegistry {
    fn emit(&self, event: TelemetryEvent) {
        if let TelemetryEvent::Metric(sample) = event {
            self.record(&sample);
        }
    }
}

/// Nearest-rank p50/p99 of a slack population (ns). Sorts in place;
/// `None` on an empty slice. The p99 is taken from the *negative* end —
/// the paper cares about how far behind the worst packets are, so the
/// "p99" series is the 1st percentile of the sorted values (most
/// negative slack), mirroring the worst-case bias of the FirstResponder
/// trigger.
pub fn slack_p50_p99(samples: &mut [i64]) -> Option<(i64, i64)> {
    if samples.is_empty() {
        return None;
    }
    samples.sort_unstable();
    let n = samples.len();
    let rank = |q: f64| -> i64 {
        let r = ((q * n as f64).ceil() as usize).clamp(1, n);
        samples[r - 1]
    };
    // Sorted ascending: worst (most negative) slack sits at the low end.
    Some((rank(0.50), rank(0.01)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(node: u32, container: u32, metric: MetricId, value: f64) -> MetricSample {
        MetricSample {
            at: SimTime::from_millis(100),
            node: NodeId(node),
            container: ContainerId(container),
            metric,
            value,
        }
    }

    #[test]
    fn registry_keeps_latest_value_per_series() {
        let reg = MetricsRegistry::new();
        reg.record(&sample(0, 1, MetricId::Cores, 2.0));
        reg.record(&sample(0, 1, MetricId::Cores, 5.0));
        reg.record(&sample(0, 2, MetricId::Cores, 3.0));
        assert_eq!(
            reg.get(NodeId(0), ContainerId(1), MetricId::Cores),
            Some(5.0)
        );
        assert_eq!(
            reg.get(NodeId(0), ContainerId(2), MetricId::Cores),
            Some(3.0)
        );
        assert_eq!(reg.get(NodeId(0), ContainerId(3), MetricId::Cores), None);
        assert_eq!(reg.samples(), 3);
        assert_eq!(reg.series(), 2);
    }

    #[test]
    fn registry_ignores_non_metric_events() {
        let reg = MetricsRegistry::new();
        reg.emit(TelemetryEvent::Dropped {
            count: 3,
            family: None,
        });
        assert_eq!(reg.samples(), 0);
    }

    #[test]
    fn prometheus_rendering_has_types_and_labels() {
        let reg = MetricsRegistry::new();
        reg.record(&sample(0, 1, MetricId::Cores, 4.0));
        reg.record(&sample(0, 1, MetricId::FrBoosts, 17.0));
        reg.record(&sample(1, 2, MetricId::Sensitivity(3), 0.25));
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE sg_cores gauge"), "{text}");
        assert!(text.contains("# TYPE sg_fr_boosts counter"), "{text}");
        assert!(
            text.contains("sg_cores{node=\"0\",container=\"1\"} 4"),
            "{text}"
        );
        assert!(
            text.contains("sg_sensitivity{node=\"1\",container=\"2\",arm=\"3\"} 0.25"),
            "{text}"
        );
    }

    #[test]
    fn non_finite_values_are_sanitized() {
        let reg = MetricsRegistry::new();
        reg.record(&sample(0, 0, MetricId::QueueBuildup, f64::INFINITY));
        let v = reg
            .get(NodeId(0), ContainerId(0), MetricId::QueueBuildup)
            .unwrap();
        assert!(v.is_finite() && v > 1e9);
        reg.record(&sample(0, 0, MetricId::QueueBuildup, f64::NAN));
        assert_eq!(
            reg.get(NodeId(0), ContainerId(0), MetricId::QueueBuildup),
            Some(0.0)
        );
    }

    #[test]
    fn metric_ids_round_trip_their_wire_names() {
        let ids = [
            MetricId::Cores,
            MetricId::FreqLevel,
            MetricId::FrBoosts,
            MetricId::ExecMetric,
            MetricId::QueueBuildup,
            MetricId::WindowRequests,
            MetricId::UpscaleHints,
            MetricId::Sensitivity(5),
            MetricId::PoolInUse,
            MetricId::PoolWaiters,
            MetricId::PoolQueuedTotal,
            MetricId::SlackP50,
            MetricId::SlackP99,
            MetricId::Replicas,
        ];
        for id in ids {
            assert_eq!(MetricId::from_wire(id.name(), id.arm()), Some(id));
        }
        assert_eq!(MetricId::from_wire("sensitivity", None), None);
        assert_eq!(MetricId::from_wire("cores", Some(2)), None);
        assert_eq!(MetricId::from_wire("nope", None), None);
    }

    #[test]
    fn slack_quantiles_are_worst_biased() {
        let mut v: Vec<i64> = (0..100).map(|i| i - 50).collect();
        let (p50, p99) = slack_p50_p99(&mut v).unwrap();
        assert_eq!(p50, -1); // nearest-rank median of -50..49
        assert_eq!(p99, -50); // most negative end
        assert_eq!(slack_p50_p99(&mut []), None);
        let (a, b) = slack_p50_p99(&mut [7]).unwrap();
        assert_eq!((a, b), (7, 7));
    }
}
