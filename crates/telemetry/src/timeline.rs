//! Fig. 7/8-style timeline reconstruction behind the `sg-timeline`
//! binary.
//!
//! A metrics JSONL stream (see [`crate::metrics`]) is a flat list of
//! `(at, node, container, metric, value)` samples; [`TimelineSet`]
//! regroups it into per-series time-ordered vectors and renders
//! per-container timeline tables and ASCII/SVG strip charts — the
//! paper's allocation + frequency vs time plots around a surge.
//!
//! [`reconcile`] cross-checks a metrics stream against the decision
//! trace recorded alongside it: every `alloc` event must be visible in
//! the matching `cores`/`freq_level` gauge series at the first sample
//! after it takes effect (unless a later event supersedes it within one
//! sampling interval), and every `fr_boost` event must be covered by a
//! step in the destination container's cumulative `fr_boosts` counter.
//! Counters make boost episodes shorter than the sampling interval
//! reconcilable: the level gauge may have already retired by the next
//! sample, but the counter step is permanent.

use crate::event::TelemetryEvent;
use crate::metrics::MetricId;
use sg_core::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One point of one series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Sample time.
    pub at: SimTime,
    /// Sampled value.
    pub value: f64,
}

/// A metrics stream regrouped into per-`(container, metric)` series.
#[derive(Debug, Default)]
pub struct TimelineSet {
    /// Schema version from the stream header, if present.
    pub version: Option<u32>,
    /// Sampling cadence from the stream header (0 = per decision cycle).
    pub interval_ns: Option<u64>,
    /// Total samples consumed.
    pub samples: u64,
    /// Metrics-family (or legacy untagged) drops testified in-stream.
    pub dropped: u64,
    series: BTreeMap<(u32, MetricId), Vec<SeriesPoint>>,
    node_of: BTreeMap<u32, u32>,
}

impl TimelineSet {
    /// Build from a parsed event stream; non-metrics events are ignored
    /// except drop testimonies.
    pub fn from_events<'a, I: IntoIterator<Item = &'a TelemetryEvent>>(events: I) -> Self {
        let mut set = TimelineSet::default();
        for event in events {
            set.push(event);
        }
        set.seal();
        set
    }

    /// Fold one event (streaming path; call [`TimelineSet::seal`] when
    /// the stream ends).
    pub fn push(&mut self, event: &TelemetryEvent) {
        let set = self;
        {
            match event {
                TelemetryEvent::Metric(s) => {
                    set.samples += 1;
                    set.node_of.insert(s.container.0, s.node.0);
                    set.series
                        .entry((s.container.0, s.metric))
                        .or_default()
                        .push(SeriesPoint {
                            at: s.at,
                            value: s.value,
                        });
                }
                TelemetryEvent::MetricsMeta {
                    version,
                    interval_ns,
                } => {
                    set.version.get_or_insert(*version);
                    set.interval_ns.get_or_insert(*interval_ns);
                }
                // In a metrics file only metrics-family (or legacy
                // untagged) testimonies appear; count both.
                TelemetryEvent::Dropped { count, family }
                    if family.is_none() || *family == Some(crate::event::EventFamily::Metrics) =>
                {
                    set.dropped += count;
                }
                _ => {}
            }
        }
    }

    /// Normalize after the last [`TimelineSet::push`]: the simulator
    /// emits in time order, but the live sampler sweeps can interleave
    /// with relay timing, so sort every series by timestamp.
    pub fn seal(&mut self) {
        for points in self.series.values_mut() {
            points.sort_by_key(|p| p.at);
        }
    }

    /// Containers with at least one series, ascending.
    pub fn containers(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self.series.keys().map(|&(c, _)| c).collect();
        out.dedup();
        out
    }

    /// The node a container was sampled on.
    pub fn node_of(&self, container: u32) -> Option<u32> {
        self.node_of.get(&container).copied()
    }

    /// One series, time-ordered.
    pub fn series(&self, container: u32, metric: MetricId) -> Option<&[SeriesPoint]> {
        self.series.get(&(container, metric)).map(|v| v.as_slice())
    }

    /// Last sampled value at or before `t`.
    pub fn value_at(&self, container: u32, metric: MetricId, t: SimTime) -> Option<f64> {
        let s = self.series(container, metric)?;
        let idx = s.partition_point(|p| p.at <= t);
        if idx == 0 {
            None
        } else {
            Some(s[idx - 1].value)
        }
    }

    /// First and last sample time across every series.
    pub fn time_range(&self) -> Option<(SimTime, SimTime)> {
        let mut range: Option<(SimTime, SimTime)> = None;
        for points in self.series.values() {
            let (Some(first), Some(last)) = (points.first(), points.last()) else {
                continue;
            };
            range = Some(match range {
                None => (first.at, last.at),
                Some((lo, hi)) => (lo.min(first.at), hi.max(last.at)),
            });
        }
        range
    }

    /// Median gap between consecutive samples of the densest series —
    /// the effective sampling interval, measured from the data.
    pub fn median_interval(&self) -> Option<SimDuration> {
        let points = self.series.values().max_by_key(|v| v.len())?;
        if points.len() < 2 {
            return None;
        }
        let mut gaps: Vec<u64> = points
            .windows(2)
            .map(|w| w[1].at.as_nanos().saturating_sub(w[0].at.as_nanos()))
            .collect();
        gaps.sort_unstable();
        Some(SimDuration::from_nanos(gaps[gaps.len() / 2]))
    }

    /// Largest gap between consecutive samples of the densest series —
    /// the worst stall the sampler actually suffered. A wall-clock
    /// reconciliation cannot demand finer temporal resolution than this,
    /// so it is the robust grace choice on a loaded machine.
    pub fn max_interval(&self) -> Option<SimDuration> {
        let points = self.series.values().max_by_key(|v| v.len())?;
        points
            .windows(2)
            .map(|w| w[1].at.as_nanos().saturating_sub(w[0].at.as_nanos()))
            .max()
            .map(SimDuration::from_nanos)
    }

    /// Per-container timeline tables, downsampled to at most `max_rows`
    /// rows per container.
    pub fn render_tables(&self, max_rows: usize) -> String {
        let mut out = String::new();
        for c in self.containers() {
            // The cores gauge carries the sampling cadence; fall back to
            // whichever series the container has.
            let cadence = self.series(c, MetricId::Cores).or_else(|| {
                self.series
                    .range((c, MetricId::Cores)..)
                    .next()
                    .and_then(|((cc, _), v)| if *cc == c { Some(v.as_slice()) } else { None })
            });
            let Some(cadence) = cadence else { continue };
            let node = self.node_of(c).unwrap_or(0);
            let _ = writeln!(out, "\ncontainer c{c} (node {node}):");
            let _ = writeln!(
                out,
                "  {:>10} {:>6} {:>5} {:>12} {:>8} {:>8} {:>12} {:>9}",
                "t_ms", "cores", "freq", "exec_met_us", "queueB", "pool", "slack99_us", "fr_boosts"
            );
            let stride = cadence.len().div_ceil(max_rows.max(1)).max(1);
            for point in cadence.iter().step_by(stride) {
                let t = point.at;
                let cell = |m: MetricId, scale: f64| -> String {
                    match self.value_at(c, m, t) {
                        Some(v) => format!("{:.2}", v * scale),
                        None => "-".to_string(),
                    }
                };
                let _ = writeln!(
                    out,
                    "  {:>10.1} {:>6} {:>5} {:>12} {:>8} {:>8} {:>12} {:>9}",
                    t.as_nanos() as f64 / 1e6,
                    cell(MetricId::Cores, 1.0),
                    cell(MetricId::FreqLevel, 1.0),
                    cell(MetricId::ExecMetric, 1e-3),
                    cell(MetricId::QueueBuildup, 1.0),
                    cell(MetricId::PoolInUse, 1.0),
                    cell(MetricId::SlackP99, 1e-3),
                    cell(MetricId::FrBoosts, 1.0),
                );
            }
        }
        out
    }

    /// ASCII strip charts: one amplitude-ramp line per key series per
    /// container, `width` columns spanning the sampled time range.
    pub fn render_ascii(&self, width: usize) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let Some((t0, t1)) = self.time_range() else {
            return "(no samples)\n".to_string();
        };
        let span = (t1.as_nanos() - t0.as_nanos()).max(1);
        let width = width.max(8);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "strip charts, {:.1} ms – {:.1} ms:",
            t0.as_nanos() as f64 / 1e6,
            t1.as_nanos() as f64 / 1e6
        );
        for c in self.containers() {
            for metric in [
                MetricId::Cores,
                MetricId::FreqLevel,
                MetricId::QueueBuildup,
                MetricId::PoolInUse,
            ] {
                let Some(points) = self.series(c, metric) else {
                    continue;
                };
                let lo = points.iter().map(|p| p.value).fold(f64::INFINITY, f64::min);
                let hi = points
                    .iter()
                    .map(|p| p.value)
                    .fold(f64::NEG_INFINITY, f64::max);
                let mut chart = String::with_capacity(width);
                for col in 0..width {
                    let t =
                        SimTime::from_nanos(t0.as_nanos() + span * (col as u64 + 1) / width as u64);
                    let ch = match self.value_at(c, metric, t) {
                        None => b' ',
                        Some(v) if hi > lo => {
                            let norm = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
                            RAMP[(norm * (RAMP.len() - 1) as f64).round() as usize]
                        }
                        Some(_) => RAMP[RAMP.len() / 2],
                    };
                    chart.push(ch as char);
                }
                let _ = writeln!(
                    out,
                    "c{c:<3} {:<14} [{lo:>8.2}..{hi:<8.2}] |{chart}|",
                    metric.name()
                );
            }
        }
        out
    }

    /// Fig. 7/8-style SVG: one strip per container with step lines for
    /// core allocation (solid) and DVFS level (accent) over time.
    pub fn render_svg(&self) -> String {
        const W: f64 = 900.0;
        const STRIP_H: f64 = 110.0;
        const PAD_L: f64 = 60.0;
        const PAD_R: f64 = 20.0;
        const PAD_TOP: f64 = 40.0;
        const GAP: f64 = 18.0;

        let containers = self.containers();
        let Some((t0, t1)) = self.time_range() else {
            return "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"300\" height=\"40\">\
                    <text x=\"10\" y=\"25\">no samples</text></svg>\n"
                .to_string();
        };
        let span = (t1.as_nanos() - t0.as_nanos()).max(1) as f64;
        let height = PAD_TOP + containers.len() as f64 * (STRIP_H + GAP) + 40.0;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{W}\" height=\"{height:.0}\" \
             font-family=\"monospace\" font-size=\"11\">"
        );
        let _ = writeln!(
            out,
            "  <text x=\"{PAD_L}\" y=\"20\" font-size=\"14\">allocation + frequency vs time \
             (cores solid, DVFS level dashed)</text>"
        );
        let x_of = |t: SimTime| -> f64 {
            PAD_L + (t.as_nanos().saturating_sub(t0.as_nanos())) as f64 / span * (W - PAD_L - PAD_R)
        };
        for (i, &c) in containers.iter().enumerate() {
            let top = PAD_TOP + i as f64 * (STRIP_H + GAP);
            let bottom = top + STRIP_H;
            let _ = writeln!(
                out,
                "  <rect x=\"{PAD_L}\" y=\"{top:.1}\" width=\"{:.1}\" height=\"{STRIP_H}\" \
                 fill=\"#f8fafc\" stroke=\"#cbd5e1\"/>",
                W - PAD_L - PAD_R
            );
            let _ = writeln!(
                out,
                "  <text x=\"8\" y=\"{:.1}\">c{c}</text>",
                top + STRIP_H / 2.0
            );
            for (metric, color, dash) in [
                (MetricId::Cores, "#2563eb", ""),
                (MetricId::FreqLevel, "#f97316", " stroke-dasharray=\"5,3\""),
            ] {
                let Some(points) = self.series(c, metric) else {
                    continue;
                };
                let vmax = points
                    .iter()
                    .map(|p| p.value)
                    .fold(f64::NEG_INFINITY, f64::max)
                    .max(1.0);
                let y_of = |v: f64| -> f64 {
                    bottom - (v / vmax).clamp(0.0, 1.0) * (STRIP_H - 14.0) - 7.0
                };
                let mut path = String::new();
                let mut prev_y: Option<f64> = None;
                for p in points {
                    let x = x_of(p.at);
                    let y = y_of(p.value);
                    if let Some(py) = prev_y {
                        // Step rendering: hold the old value until this
                        // sample's time.
                        let _ = write!(path, "{x:.1},{py:.1} ");
                    }
                    let _ = write!(path, "{x:.1},{y:.1} ");
                    prev_y = Some(y);
                }
                let _ = writeln!(
                    out,
                    "  <polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" \
                     stroke-width=\"1.5\"{dash}/>",
                    path.trim_end()
                );
                let _ = writeln!(
                    out,
                    "  <text x=\"{:.1}\" y=\"{:.1}\" fill=\"{color}\">{} max {vmax:.0}</text>",
                    W - PAD_R - 150.0,
                    top + if metric == MetricId::Cores {
                        14.0
                    } else {
                        28.0
                    },
                    metric.name()
                );
            }
        }
        let _ = writeln!(
            out,
            "  <text x=\"{PAD_L}\" y=\"{:.1}\">{:.1} ms</text>",
            height - 14.0,
            t0.as_nanos() as f64 / 1e6
        );
        let _ = writeln!(
            out,
            "  <text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{:.1} ms</text>",
            W - PAD_R,
            height - 14.0,
            t1.as_nanos() as f64 / 1e6
        );
        let _ = writeln!(out, "</svg>");
        out
    }
}

/// Outcome of cross-checking a metrics stream against a decision trace.
#[derive(Debug, Default)]
pub struct ReconcileReport {
    /// Trace events confirmed visible in the gauge/counter series.
    pub checked: u64,
    /// Events superseded by a later event before the next sample could
    /// observe them (expected around rapid boost/retire churn).
    pub superseded: u64,
    /// Events after the last sample (run ended before the next sweep).
    pub tail_skipped: u64,
    /// Events lost by the metrics recording pipeline (testified
    /// in-stream); nonzero makes reconciliation unsound.
    pub metrics_dropped: u64,
    /// Events lost by the decision-trace pipeline.
    pub trace_dropped: u64,
    /// Hard failures: a trace event whose step never appeared.
    pub mismatches: Vec<String>,
}

impl ReconcileReport {
    /// True when every checkable event reconciled and nothing was
    /// dropped.
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty() && self.metrics_dropped == 0 && self.trace_dropped == 0
    }

    /// Human-readable verdict.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "reconcile: {} event(s) confirmed in gauge series, {} superseded, {} after last sample",
            self.checked, self.superseded, self.tail_skipped
        );
        if self.metrics_dropped > 0 || self.trace_dropped > 0 {
            let _ = writeln!(
                out,
                "  !! drops testified: {} metrics, {} trace",
                self.metrics_dropped, self.trace_dropped
            );
        }
        for m in &self.mismatches {
            let _ = writeln!(out, "  MISMATCH: {m}");
        }
        out
    }
}

/// Cross-check `metrics` against the decision `trace` (see the module
/// docs for the exact rules). `grace` absorbs sampler races at window
/// boundaries — one sampling interval is the natural choice.
pub fn reconcile(
    metrics: &TimelineSet,
    trace: &[TelemetryEvent],
    grace: SimDuration,
) -> ReconcileReport {
    let mut r = ReconcileReport {
        metrics_dropped: metrics.dropped,
        ..ReconcileReport::default()
    };
    let grace_ns = grace.as_nanos();

    // Regroup the trace per container, keeping file order (the supersede
    // rule depends on it for same-timestamp events).
    let mut allocs: BTreeMap<u32, Vec<(SimTime, u32, u8)>> = BTreeMap::new();
    let mut boosts: BTreeMap<u32, Vec<SimTime>> = BTreeMap::new();
    for event in trace {
        match event {
            TelemetryEvent::Alloc {
                at,
                container,
                cores,
                freq_level,
                ..
            } => allocs
                .entry(container.0)
                .or_default()
                .push((*at, *cores, *freq_level)),
            TelemetryEvent::FrBoost { at, dest, .. } => boosts.entry(dest.0).or_default().push(*at),
            TelemetryEvent::Dropped { count, .. } => r.trace_dropped += count,
            _ => {}
        }
    }

    // Gauge reconciliation: each alloc event's cores/freq must be the
    // value of the first strictly-later sample, unless a later event for
    // the same container lands before that sample (+grace) — then the
    // sample legitimately shows the newer state.
    for (&c, list) in &allocs {
        for (i, &(at, cores, freq)) in list.iter().enumerate() {
            for (metric, expected) in [
                (MetricId::Cores, cores as f64),
                (MetricId::FreqLevel, freq as f64),
            ] {
                let Some(s) = metrics.series(c, metric) else {
                    r.tail_skipped += 1;
                    continue;
                };
                let idx = s.partition_point(|p| p.at <= at);
                if idx == s.len() {
                    r.tail_skipped += 1;
                    continue;
                }
                let deadline_ns = s[idx].at.as_nanos() + grace_ns;
                if list[i + 1..]
                    .iter()
                    .any(|&(at2, _, _)| at2.as_nanos() <= deadline_ns)
                {
                    r.superseded += 1;
                    continue;
                }
                if (s[idx].value - expected).abs() > 1e-9 {
                    r.mismatches.push(format!(
                        "c{c} {}: event at {} ns set {}, but sample at {} ns reads {}",
                        metric.name(),
                        at.as_nanos(),
                        expected,
                        s[idx].at.as_nanos(),
                        s[idx].value
                    ));
                } else {
                    r.checked += 1;
                }
            }
        }
    }

    // Counter reconciliation: within each inter-sample window the
    // cumulative fr_boosts counter must step by at least the number of
    // fr_boost events destined to the container in that window (it may
    // step more — downstream targets increment it without their own
    // event). Boosts racing the sweep boundary may surface one window
    // later.
    for (&c, times) in &boosts {
        let Some(s) = metrics.series(c, MetricId::FrBoosts) else {
            if metrics.samples > 0 {
                r.mismatches
                    .push(format!("c{c}: fr_boost events but no fr_boosts series"));
            } else {
                r.tail_skipped += times.len() as u64;
            }
            continue;
        };
        let mut counts = vec![0u64; s.len()];
        let mut shiftable = vec![0u64; s.len()];
        for &t in times {
            let idx = s.partition_point(|p| p.at < t);
            if idx == s.len() {
                r.tail_skipped += 1;
                continue;
            }
            counts[idx] += 1;
            if t.as_nanos() + grace_ns > s[idx].at.as_nanos() {
                shiftable[idx] += 1;
            }
        }
        let mut carried = 0u64;
        for i in 0..s.len() {
            let total = counts[i] + carried;
            carried = 0;
            let prev = if i == 0 { 0.0 } else { s[i - 1].value };
            let delta = s[i].value - prev;
            if delta < -1e-9 {
                r.mismatches.push(format!(
                    "c{c} fr_boosts: counter decreased at {} ns ({} -> {})",
                    s[i].at.as_nanos(),
                    prev,
                    s[i].value
                ));
                continue;
            }
            let have = delta.round().max(0.0) as u64;
            if total <= have {
                r.checked += total;
                continue;
            }
            let deficit = total - have;
            if deficit <= shiftable[i] && i + 1 < s.len() {
                // Boundary race: re-attribute to the next window.
                r.checked += total - deficit;
                carried = deficit;
            } else if deficit <= shiftable[i] {
                r.checked += total - deficit;
                r.tail_skipped += deficit;
            } else {
                r.mismatches.push(format!(
                    "c{c} fr_boosts: {total} boost event(s) by {} ns but counter stepped {have}",
                    s[i].at.as_nanos()
                ));
            }
        }
        if carried > 0 {
            r.tail_skipped += carried;
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricSample;
    use sg_core::ids::{ContainerId, NodeId};

    fn metric(at_ms: u64, container: u32, metric: MetricId, value: f64) -> TelemetryEvent {
        TelemetryEvent::Metric(MetricSample {
            at: SimTime::from_millis(at_ms),
            node: NodeId(0),
            container: ContainerId(container),
            metric,
            value,
        })
    }

    fn alloc(at_ms: u64, container: u32, cores: u32, freq: u8) -> TelemetryEvent {
        TelemetryEvent::Alloc {
            at: SimTime::from_millis(at_ms),
            container: ContainerId(container),
            cores,
            freq_level: freq,
            freq_ghz: 1.8,
        }
    }

    fn boost(at_ms: u64, dest: u32) -> TelemetryEvent {
        TelemetryEvent::FrBoost {
            at: SimTime::from_millis(at_ms),
            node: NodeId(0),
            dest: ContainerId(dest),
            slack_ns: -1000,
            level: 8,
            targets: 1,
        }
    }

    fn grace() -> SimDuration {
        SimDuration::from_millis(1)
    }

    #[test]
    fn timeline_set_regroups_and_orders_series() {
        let events = vec![
            TelemetryEvent::MetricsMeta {
                version: 1,
                interval_ns: 100,
            },
            metric(200, 1, MetricId::Cores, 3.0),
            metric(100, 1, MetricId::Cores, 2.0), // out of order: sorted
            metric(100, 2, MetricId::FreqLevel, 0.0),
        ];
        let set = TimelineSet::from_events(&events);
        assert_eq!(set.version, Some(1));
        assert_eq!(set.samples, 3);
        assert_eq!(set.containers(), vec![1, 2]);
        let s = set.series(1, MetricId::Cores).unwrap();
        assert_eq!(s[0].value, 2.0);
        assert_eq!(s[1].value, 3.0);
        assert_eq!(
            set.value_at(1, MetricId::Cores, SimTime::from_millis(150)),
            Some(2.0)
        );
        assert_eq!(
            set.value_at(1, MetricId::Cores, SimTime::from_millis(50)),
            None
        );
        assert_eq!(set.median_interval(), Some(SimDuration::from_millis(100)));
    }

    #[test]
    fn reconcile_confirms_visible_steps() {
        let metrics = TimelineSet::from_events(&[
            metric(100, 0, MetricId::Cores, 2.0),
            metric(100, 0, MetricId::FreqLevel, 0.0),
            metric(200, 0, MetricId::Cores, 4.0),
            metric(200, 0, MetricId::FreqLevel, 0.0),
        ]);
        // Core change at 150 ms is visible in the 200 ms sample.
        let trace = vec![alloc(150, 0, 4, 0)];
        let r = reconcile(&metrics, &trace, grace());
        assert!(r.passed(), "{}", r.render());
        assert_eq!(r.checked, 2);
    }

    #[test]
    fn reconcile_flags_missing_steps() {
        let metrics = TimelineSet::from_events(&[
            metric(100, 0, MetricId::Cores, 2.0),
            metric(200, 0, MetricId::Cores, 2.0), // never moved
        ]);
        let trace = vec![alloc(150, 0, 4, 0)];
        let r = reconcile(&metrics, &trace, grace());
        assert!(!r.passed());
        // One mismatch for the cores gauge; the freq_level series is
        // absent entirely, which counts as unobservable, not wrong.
        assert_eq!(r.mismatches.len(), 1, "{:?}", r.mismatches);
        assert!(r.mismatches[0].contains("cores"));
        assert_eq!(r.tail_skipped, 1);
    }

    #[test]
    fn superseded_events_are_excused() {
        let metrics = TimelineSet::from_events(&[
            metric(100, 0, MetricId::Cores, 2.0),
            metric(200, 0, MetricId::Cores, 6.0),
            metric(100, 0, MetricId::FreqLevel, 0.0),
            metric(200, 0, MetricId::FreqLevel, 0.0),
        ]);
        // 4-core step at 150 ms was overwritten at 170 ms, before the
        // 200 ms sample could see it.
        let trace = vec![alloc(150, 0, 4, 0), alloc(170, 0, 6, 0)];
        let r = reconcile(&metrics, &trace, grace());
        assert!(r.passed(), "{}", r.render());
        assert!(r.superseded >= 1);
    }

    #[test]
    fn events_after_the_last_sample_are_skipped() {
        let metrics = TimelineSet::from_events(&[metric(100, 0, MetricId::Cores, 2.0)]);
        let trace = vec![alloc(150, 0, 4, 0)];
        let r = reconcile(&metrics, &trace, grace());
        assert!(r.passed(), "{}", r.render());
        assert_eq!(r.tail_skipped, 2);
        assert_eq!(r.checked, 0);
    }

    #[test]
    fn boost_counter_steps_cover_boost_events() {
        let metrics = TimelineSet::from_events(&[
            metric(100, 0, MetricId::FrBoosts, 0.0),
            metric(200, 0, MetricId::FrBoosts, 2.0),
            metric(300, 0, MetricId::FrBoosts, 2.0),
        ]);
        let trace = vec![boost(120, 0), boost(130, 0)];
        let r = reconcile(&metrics, &trace, grace());
        assert!(r.passed(), "{}", r.render());
        assert_eq!(r.checked, 2);

        // A third boost with no counter step is a mismatch.
        let trace = vec![boost(120, 0), boost(130, 0), boost(250, 0)];
        let r = reconcile(&metrics, &trace, grace());
        assert!(!r.passed());
        assert!(r.mismatches[0].contains("fr_boosts"), "{:?}", r.mismatches);
    }

    #[test]
    fn boundary_boosts_may_surface_one_window_later() {
        // Boost lands exactly at the 200 ms sweep time; the counter only
        // shows it at 300 ms (the sampler read before the boost landed).
        let metrics = TimelineSet::from_events(&[
            metric(100, 0, MetricId::FrBoosts, 0.0),
            metric(200, 0, MetricId::FrBoosts, 0.0),
            metric(300, 0, MetricId::FrBoosts, 1.0),
        ]);
        let trace = vec![boost(200, 0)];
        let r = reconcile(&metrics, &trace, grace());
        assert!(r.passed(), "{}", r.render());
    }

    #[test]
    fn testified_drops_fail_reconciliation() {
        let metrics = TimelineSet::from_events(&[
            metric(100, 0, MetricId::Cores, 2.0),
            TelemetryEvent::Dropped {
                count: 5,
                family: Some(crate::event::EventFamily::Metrics),
            },
        ]);
        let r = reconcile(&metrics, &[], grace());
        assert!(!r.passed());
        assert_eq!(r.metrics_dropped, 5);
    }

    #[test]
    fn renderings_cover_the_series() {
        let set = TimelineSet::from_events(&[
            metric(100, 0, MetricId::Cores, 2.0),
            metric(200, 0, MetricId::Cores, 4.0),
            metric(100, 0, MetricId::FreqLevel, 0.0),
            metric(200, 0, MetricId::FreqLevel, 8.0),
            metric(100, 0, MetricId::QueueBuildup, 1.0),
            metric(200, 0, MetricId::QueueBuildup, 2.5),
        ]);
        let table = set.render_tables(16);
        assert!(table.contains("container c0"), "{table}");
        assert!(table.contains("cores"), "{table}");
        let ascii = set.render_ascii(40);
        assert!(ascii.contains("cores"), "{ascii}");
        assert!(ascii.contains('|'), "{ascii}");
        let svg = set.render_svg();
        assert!(svg.starts_with("<svg"), "{svg}");
        assert!(svg.contains("polyline"), "{svg}");
        assert!(svg.trim_end().ends_with("</svg>"), "{svg}");
        // Empty set still renders valid stubs.
        let empty = TimelineSet::from_events(&[]);
        assert!(empty.render_svg().contains("no samples"));
        assert!(empty.render_ascii(40).contains("no samples"));
    }
}
