//! Shared JSONL trace reading for the CLI tools.
//!
//! `sg-trace` and `sg-timeline` consume the same wire format; this
//! module is the single open-and-parse loop both binaries use, so the
//! tolerant-parsing policy (skip blank lines, count — don't fail on —
//! unparseable ones) lives in exactly one place. A trace truncated by a
//! crash should still summarize.
//!
//! Reading is **streaming**: [`TraceStream`] yields one event at a time
//! from a buffered reader, so a multi-gigabyte `cluster_scale` export
//! summarizes in constant memory. [`read_trace`] (collect everything)
//! is a convenience built on top for the small-trace paths that really
//! do need the whole file. [`TailStream`] adds a follow mode
//! (`tail -f` semantics: poll for appended lines, hold partial trailing
//! lines until their newline arrives) used by `sg-trace watch --tail`.

use crate::event::TelemetryEvent;
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

/// A fully parsed trace file.
#[derive(Debug, Default)]
pub struct TraceFile {
    /// Parsed events, in file order.
    pub events: Vec<TelemetryEvent>,
    /// Lines that failed to parse (counted, not fatal).
    pub bad_lines: u64,
}

/// Streaming JSONL event reader: an iterator over parsed events that
/// never holds more than one line in memory.
#[derive(Debug)]
pub struct TraceStream<R> {
    reader: BufReader<R>,
    line: String,
    /// Lines that failed to parse so far (counted, not fatal).
    pub bad_lines: u64,
}

impl TraceStream<std::fs::File> {
    /// Open `path` for streaming.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        Ok(TraceStream::new(std::fs::File::open(path)?))
    }
}

impl<R: Read> TraceStream<R> {
    /// Stream events from any reader.
    pub fn new(inner: R) -> Self {
        TraceStream {
            reader: BufReader::new(inner),
            line: String::new(),
            bad_lines: 0,
        }
    }

    /// Next parsed event, skipping blank lines and counting bad ones.
    /// `Ok(None)` at end of input; I/O errors are returned to the
    /// caller.
    #[allow(clippy::should_implement_trait)] // fallible next: io::Result
    pub fn next(&mut self) -> std::io::Result<Option<TelemetryEvent>> {
        loop {
            self.line.clear();
            if self.reader.read_line(&mut self.line)? == 0 {
                return Ok(None);
            }
            // A line without a trailing newline is a partial write at
            // the file's end (crash or in-progress append): parse it
            // like any other — at end-of-file it is all we will get.
            let line = self.line.trim();
            if line.is_empty() {
                continue;
            }
            match TelemetryEvent::from_json_line(line) {
                Ok(event) => return Ok(Some(event)),
                Err(_) => self.bad_lines += 1,
            }
        }
    }

    /// Drain the stream through `f`. Returns the bad-line count.
    pub fn for_each<F: FnMut(TelemetryEvent)>(mut self, mut f: F) -> std::io::Result<u64> {
        while let Some(event) = self.next()? {
            f(event);
        }
        Ok(self.bad_lines)
    }
}

/// Follow mode over an append-only JSONL file: yields complete lines as
/// they are written, holding any partial trailing line until its
/// newline arrives. [`TailStream::poll`] is non-blocking; the caller
/// owns the sleep/stop policy (ctrl-C, quiesce detection).
#[derive(Debug)]
pub struct TailStream {
    file: std::fs::File,
    partial: Vec<u8>,
    /// Lines that failed to parse so far (counted, not fatal).
    pub bad_lines: u64,
}

impl TailStream {
    /// Open `path` for following, starting at the beginning.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        Ok(TailStream {
            file: std::fs::File::open(path)?,
            partial: Vec::new(),
            bad_lines: 0,
        })
    }

    /// Read whatever has been appended since the last poll and parse
    /// every *complete* line in it. Returns the parsed events (empty
    /// when nothing new arrived).
    pub fn poll(&mut self) -> std::io::Result<Vec<TelemetryEvent>> {
        let mut buf = [0u8; 64 * 1024];
        let mut out = Vec::new();
        loop {
            let n = self.file.read(&mut buf)?;
            if n == 0 {
                break;
            }
            for &b in &buf[..n] {
                if b == b'\n' {
                    let line = String::from_utf8_lossy(&self.partial);
                    let line = line.trim();
                    if !line.is_empty() {
                        match TelemetryEvent::from_json_line(line) {
                            Ok(event) => out.push(event),
                            Err(_) => self.bad_lines += 1,
                        }
                    }
                    self.partial.clear();
                } else {
                    self.partial.push(b);
                }
            }
        }
        Ok(out)
    }
}

/// Open a streaming reader over `path` (the constant-memory path the
/// CLI tools use).
pub fn stream_trace(path: &Path) -> std::io::Result<TraceStream<std::fs::File>> {
    TraceStream::open(path)
}

/// Read a whole JSONL trace from `path` into memory. Blank lines are
/// skipped; lines that fail to parse are counted in
/// [`TraceFile::bad_lines`]. I/O errors (missing file, read failure)
/// are returned to the caller. Prefer [`stream_trace`] for anything
/// that can be folded incrementally — cluster-scale exports do not fit
/// in memory.
pub fn read_trace(path: &Path) -> std::io::Result<TraceFile> {
    let mut stream = stream_trace(path)?;
    let mut out = TraceFile::default();
    while let Some(event) = stream.next()? {
        out.events.push(event);
    }
    out.bad_lines = stream.bad_lines;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn reads_good_lines_and_counts_bad_ones() {
        let path =
            std::env::temp_dir().join(format!("sg-telemetry-reader-{}.jsonl", std::process::id()));
        {
            let mut f = std::fs::File::create(&path).unwrap();
            writeln!(f, "{{\"type\":\"dropped\",\"count\":4}}").unwrap();
            writeln!(f).unwrap(); // blank: skipped
            writeln!(f, "{{\"type\":\"dro").unwrap(); // truncated: counted
            writeln!(
                f,
                "{{\"type\":\"dropped\",\"count\":5,\"family\":\"metrics\"}}"
            )
            .unwrap();
        }
        let trace = read_trace(&path).unwrap();
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.bad_lines, 1);
        assert!(matches!(
            trace.events[0],
            TelemetryEvent::Dropped { count: 4, .. }
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(read_trace(Path::new("/nonexistent/trace.jsonl")).is_err());
        assert!(stream_trace(Path::new("/nonexistent/trace.jsonl")).is_err());
    }

    #[test]
    fn stream_yields_one_event_at_a_time() {
        let input = "{\"type\":\"dropped\",\"count\":1}\n\nbad\n{\"type\":\"dropped\",\"count\":2}";
        let mut stream = TraceStream::new(input.as_bytes());
        assert!(matches!(
            stream.next().unwrap(),
            Some(TelemetryEvent::Dropped { count: 1, .. })
        ));
        // Skips the blank and the bad line; the final unterminated line
        // still parses at end-of-file.
        assert!(matches!(
            stream.next().unwrap(),
            Some(TelemetryEvent::Dropped { count: 2, .. })
        ));
        assert!(stream.next().unwrap().is_none());
        assert_eq!(stream.bad_lines, 1);
    }

    #[test]
    fn tail_holds_partial_lines_until_newline() {
        let path =
            std::env::temp_dir().join(format!("sg-telemetry-tail-{}.jsonl", std::process::id()));
        let mut f = std::fs::File::create(&path).unwrap();
        let mut tail = TailStream::open(&path).unwrap();
        assert!(tail.poll().unwrap().is_empty());

        write!(f, "{{\"type\":\"dropped\",").unwrap();
        f.flush().unwrap();
        // Half a line: nothing yielded yet.
        assert!(tail.poll().unwrap().is_empty());

        writeln!(f, "\"count\":3}}").unwrap();
        writeln!(f, "{{\"type\":\"dropped\",\"count\":4}}").unwrap();
        f.flush().unwrap();
        let events = tail.poll().unwrap();
        assert_eq!(events.len(), 2);
        assert!(matches!(
            events[0],
            TelemetryEvent::Dropped { count: 3, .. }
        ));
        assert_eq!(tail.bad_lines, 0);
        let _ = std::fs::remove_file(&path);
    }
}
