//! Shared JSONL trace reading for the CLI tools.
//!
//! `sg-trace` and `sg-timeline` consume the same wire format; this
//! module is the single open-and-parse loop both binaries use, so the
//! tolerant-parsing policy (skip blank lines, count — don't fail on —
//! unparseable ones) lives in exactly one place. A trace truncated by a
//! crash should still summarize.

use crate::event::TelemetryEvent;
use std::io::{BufRead, BufReader};
use std::path::Path;

/// A parsed trace file.
#[derive(Debug, Default)]
pub struct TraceFile {
    /// Parsed events, in file order.
    pub events: Vec<TelemetryEvent>,
    /// Lines that failed to parse (counted, not fatal).
    pub bad_lines: u64,
}

/// Read a JSONL trace from `path`. Blank lines are skipped; lines that
/// fail to parse are counted in [`TraceFile::bad_lines`]. I/O errors
/// (missing file, read failure) are returned to the caller.
pub fn read_trace(path: &Path) -> std::io::Result<TraceFile> {
    let file = std::fs::File::open(path)?;
    let mut out = TraceFile::default();
    for line in BufReader::new(file).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match TelemetryEvent::from_json_line(&line) {
            Ok(event) => out.events.push(event),
            Err(_) => out.bad_lines += 1,
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn reads_good_lines_and_counts_bad_ones() {
        let path =
            std::env::temp_dir().join(format!("sg-telemetry-reader-{}.jsonl", std::process::id()));
        {
            let mut f = std::fs::File::create(&path).unwrap();
            writeln!(f, "{{\"type\":\"dropped\",\"count\":4}}").unwrap();
            writeln!(f).unwrap(); // blank: skipped
            writeln!(f, "{{\"type\":\"dro").unwrap(); // truncated: counted
            writeln!(
                f,
                "{{\"type\":\"dropped\",\"count\":5,\"family\":\"metrics\"}}"
            )
            .unwrap();
        }
        let trace = read_trace(&path).unwrap();
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.bad_lines, 1);
        assert!(matches!(
            trace.events[0],
            TelemetryEvent::Dropped { count: 4, .. }
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(read_trace(Path::new("/nonexistent/trace.jsonl")).is_err());
    }
}
