//! The sink contract and the two direct (synchronous) sinks.
//!
//! A sink must be cheap when unused: harnesses hold an
//! `Option<SharedSink>` and skip event construction entirely when it is
//! `None`, so a disabled sink costs one branch on the packet hot path.

use crate::event::TelemetryEvent;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Where telemetry events go.
///
/// `emit` must be callable from any thread; implementations choose their
/// own synchronization. Synchronous sinks (this module) may block on I/O
/// and are therefore only suitable for the simulator or for off-path
/// threads; the live packet path must go through
/// [`crate::ring::RingSink`], which never blocks.
///
/// # Example
///
/// A custom sink only needs `emit`; this one counts events:
///
/// ```
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use sg_telemetry::{TelemetryEvent, TelemetrySink};
///
/// #[derive(Default)]
/// struct CountingSink(AtomicU64);
///
/// impl TelemetrySink for CountingSink {
///     fn emit(&self, _event: TelemetryEvent) {
///         self.0.fetch_add(1, Ordering::Relaxed);
///     }
/// }
/// ```
pub trait TelemetrySink: Send + Sync {
    /// Record one event.
    fn emit(&self, event: TelemetryEvent);

    /// Make all previously emitted events durable (no-op by default).
    fn flush(&self) {}
}

/// A shareable handle to any sink.
pub type SharedSink = Arc<dyn TelemetrySink>;

/// In-memory sink for tests and programmatic inspection.
#[derive(Debug, Default)]
pub struct VecSink {
    events: Mutex<Vec<TelemetryEvent>>,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty sink, pre-wrapped for sharing.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Remove and return everything recorded so far.
    pub fn take(&self) -> Vec<TelemetryEvent> {
        std::mem::take(&mut self.events.lock().expect("VecSink poisoned"))
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.lock().expect("VecSink poisoned").len()
    }

    /// True when nothing has been recorded (or everything was taken).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TelemetrySink for VecSink {
    fn emit(&self, event: TelemetryEvent) {
        self.events.lock().expect("VecSink poisoned").push(event);
    }
}

/// Sink writing one JSON object per line to a buffered file.
///
/// A full disk must not take down the run it is observing, so `emit`
/// never panics or blocks the caller on an error — but it is not silent
/// either: failed writes are counted, the last error message is kept,
/// and dropping the sink flushes the buffer and reports any loss to
/// stderr so tail events are never lost without a trace.
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
    written: AtomicU64,
    write_errors: AtomicU64,
    last_error: Mutex<Option<String>>,
}

impl JsonlSink {
    /// Create (truncating) the file at `path`.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
            written: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            last_error: Mutex::new(None),
        })
    }

    /// Events written so far.
    pub fn written(&self) -> u64 {
        self.written.load(Ordering::Relaxed)
    }

    /// Write or flush failures so far.
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }

    /// The most recent write/flush error, if any.
    pub fn last_error(&self) -> Option<String> {
        self.last_error.lock().expect("JsonlSink poisoned").clone()
    }

    fn record_error(&self, e: &std::io::Error) {
        self.write_errors.fetch_add(1, Ordering::Relaxed);
        *self.last_error.lock().expect("JsonlSink poisoned") = Some(e.to_string());
    }

    /// Flush, surfacing the error to the caller (unlike the fire-and-
    /// forget trait `flush`).
    pub fn try_flush(&self) -> std::io::Result<()> {
        let result = self.writer.lock().expect("JsonlSink poisoned").flush();
        if let Err(e) = &result {
            self.record_error(e);
        }
        result
    }
}

impl TelemetrySink for JsonlSink {
    fn emit(&self, event: TelemetryEvent) {
        let line = event.to_json_line();
        let mut w = self.writer.lock().expect("JsonlSink poisoned");
        match writeln!(w, "{line}") {
            Ok(()) => {
                self.written.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                drop(w);
                self.record_error(&e);
            }
        }
    }

    fn flush(&self) {
        let _ = self.try_flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.try_flush();
        let errors = self.write_errors();
        if errors > 0 {
            let detail = self.last_error().unwrap_or_else(|| "unknown".into());
            eprintln!("sg-telemetry: {errors} trace write error(s); last: {detail}");
        }
    }
}

/// Routes events from one relay to per-stream destinations: span records
/// to the span sink, metrics samples to the metrics sink, profile events
/// to the profile sink, decision events to the decision sink. A
/// family-tagged pipeline [`TelemetryEvent::Dropped`] record goes only
/// to its own family's stream, so each output file testifies to exactly
/// its own losses; an untagged (legacy) one is duplicated to every open
/// stream. The live driver funnels every hot-path emitter through a
/// single [`crate::ring::RingSink`] whose inner sink is a `DemuxSink`,
/// keeping the packet path to one lock-free push however many trace
/// files are open.
///
/// The metrics slot carries more than gauge samples: the cumulative
/// aggregation snapshots ([`TelemetryEvent::Digest`] /
/// [`TelemetryEvent::Slo`] / [`TelemetryEvent::TopK`], see
/// [`crate::agg`]) ride the same stream, so one metrics file feeds both
/// `sg-timeline` and `sg-trace watch`.
pub struct DemuxSink {
    decision: Option<SharedSink>,
    span: Option<SharedSink>,
    metrics: Option<SharedSink>,
    profile: Option<SharedSink>,
}

impl DemuxSink {
    /// A demux over the (optional) per-stream destinations.
    pub fn new(
        decision: Option<SharedSink>,
        span: Option<SharedSink>,
        metrics: Option<SharedSink>,
        profile: Option<SharedSink>,
    ) -> Self {
        DemuxSink {
            decision,
            span,
            metrics,
            profile,
        }
    }

    fn stream(&self, family: crate::event::EventFamily) -> Option<&SharedSink> {
        use crate::event::EventFamily;
        match family {
            EventFamily::Decision => self.decision.as_ref(),
            EventFamily::Span => self.span.as_ref(),
            EventFamily::Metrics => self.metrics.as_ref(),
            EventFamily::Profile => self.profile.as_ref(),
        }
    }
}

impl TelemetrySink for DemuxSink {
    fn emit(&self, event: TelemetryEvent) {
        if let TelemetryEvent::Dropped { family: None, .. } = &event {
            // Legacy total: every open stream carries the testimony.
            for sink in [&self.decision, &self.span, &self.metrics, &self.profile]
                .into_iter()
                .flatten()
            {
                sink.emit(event.clone());
            }
            return;
        }
        if let Some(sink) = self.stream(event.family()) {
            sink.emit(event);
        }
    }

    fn flush(&self) {
        for sink in [&self.decision, &self.span, &self.metrics, &self.profile]
            .into_iter()
            .flatten()
        {
            sink.flush();
        }
    }
}

/// Duplicates every event to each inner sink. The live driver uses this
/// to feed the metrics stream into both its JSONL file and the in-memory
/// [`crate::metrics::MetricsRegistry`] behind one demux slot.
pub struct FanoutSink {
    sinks: Vec<SharedSink>,
}

impl FanoutSink {
    /// A fanout over `sinks`, in emit order.
    pub fn new(sinks: Vec<SharedSink>) -> Self {
        FanoutSink { sinks }
    }
}

impl TelemetrySink for FanoutSink {
    fn emit(&self, event: TelemetryEvent) {
        for sink in &self.sinks {
            sink.emit(event.clone());
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_core::time::SimTime;

    fn dropped(count: u64) -> TelemetryEvent {
        TelemetryEvent::Dropped {
            count,
            family: None,
        }
    }

    #[test]
    fn vec_sink_records_and_takes() {
        let sink = VecSink::shared();
        assert!(sink.is_empty());
        sink.emit(dropped(1));
        sink.emit(dropped(2));
        assert_eq!(sink.len(), 2);
        let events = sink.take();
        assert_eq!(events.len(), 2);
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path =
            std::env::temp_dir().join(format!("sg-telemetry-test-{}.jsonl", std::process::id()));
        let sink = JsonlSink::create(&path).expect("create trace file");
        sink.emit(TelemetryEvent::Alloc {
            at: SimTime::from_micros(10),
            container: sg_core::ids::ContainerId(2),
            cores: 3,
            freq_level: 1,
            freq_ghz: 1.8,
        });
        sink.emit(dropped(0));
        assert_eq!(sink.written(), 2);
        sink.flush();
        let body = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<_> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            TelemetryEvent::from_json_line(line).expect("every line parses");
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Satellite: dropping the sink without an explicit flush must still
    /// leave a complete, parseable file — tail events survive.
    #[test]
    fn dropped_sink_leaves_complete_parseable_file() {
        let path =
            std::env::temp_dir().join(format!("sg-telemetry-drop-{}.jsonl", std::process::id()));
        let n = 100u64;
        {
            let sink = JsonlSink::create(&path).expect("create trace file");
            for count in 0..n {
                sink.emit(dropped(count));
            }
            assert_eq!(sink.written(), n);
            assert_eq!(sink.write_errors(), 0);
            // No flush: Drop must do it.
        }
        let body = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<_> = body.lines().collect();
        assert_eq!(lines.len(), n as usize, "every buffered event persisted");
        for (i, line) in lines.iter().enumerate() {
            match TelemetryEvent::from_json_line(line).expect("line parses") {
                TelemetryEvent::Dropped { count, .. } => assert_eq!(count, i as u64),
                other => panic!("wrong event: {other:?}"),
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Write errors are counted and surfaced, not swallowed.
    #[cfg(target_os = "linux")]
    #[test]
    fn write_errors_are_surfaced() {
        // /dev/full accepts the open but fails every flushed write with
        // ENOSPC — the canonical full-disk stand-in.
        let sink = match JsonlSink::create(Path::new("/dev/full")) {
            Ok(s) => s,
            Err(_) => return, // sandboxed environments may hide /dev/full
        };
        sink.emit(dropped(1));
        assert!(sink.try_flush().is_err(), "flush to /dev/full must fail");
        assert!(sink.write_errors() > 0);
        assert!(sink.last_error().is_some());
    }

    fn span_event() -> TelemetryEvent {
        use crate::span::SpanRecord;
        use sg_core::time::SimDuration;
        TelemetryEvent::Span(SpanRecord {
            trace: 0,
            span: 1,
            parent: None,
            container: None,
            node: None,
            start: SimTime::ZERO,
            end: SimTime::from_micros(5),
            net_in: SimDuration::ZERO,
            conn_wait: SimDuration::ZERO,
            service: SimDuration::ZERO,
            downstream: SimDuration::from_micros(5),
            freq_level: 0,
            slack_ns: 0,
        })
    }

    fn metric_event() -> TelemetryEvent {
        use crate::metrics::{MetricId, MetricSample};
        TelemetryEvent::Metric(MetricSample {
            at: SimTime::from_micros(3),
            node: sg_core::ids::NodeId(0),
            container: sg_core::ids::ContainerId(0),
            metric: MetricId::Cores,
            value: 2.0,
        })
    }

    fn profile_event() -> TelemetryEvent {
        TelemetryEvent::ProfileMark {
            mark: crate::profile::ProfileMark::HeapDepthHighWater,
            value: 42,
        }
    }

    #[test]
    fn demux_routes_four_families_and_duplicates_legacy_drops() {
        let decision = VecSink::shared();
        let span = VecSink::shared();
        let metrics = VecSink::shared();
        let profile = VecSink::shared();
        let demux = DemuxSink::new(
            Some(decision.clone() as SharedSink),
            Some(span.clone() as SharedSink),
            Some(metrics.clone() as SharedSink),
            Some(profile.clone() as SharedSink),
        );
        demux.emit(dropped(3)); // legacy: every stream
        demux.emit(TelemetryEvent::Alloc {
            at: SimTime::from_micros(1),
            container: sg_core::ids::ContainerId(0),
            cores: 2,
            freq_level: 0,
            freq_ghz: 1.8,
        });
        demux.emit(span_event());
        demux.emit(metric_event());
        demux.emit(profile_event());
        let d = decision.take();
        let s = span.take();
        let m = metrics.take();
        let p = profile.take();
        assert_eq!(d.len(), 2, "legacy drop + alloc on the decision stream");
        assert_eq!(s.len(), 2, "legacy drop + span on the span stream");
        assert_eq!(m.len(), 2, "legacy drop + sample on the metrics stream");
        assert_eq!(p.len(), 2, "legacy drop + mark on the profile stream");
        assert!(matches!(d[1], TelemetryEvent::Alloc { .. }));
        assert!(matches!(s[1], TelemetryEvent::Span(_)));
        assert!(matches!(m[1], TelemetryEvent::Metric(_)));
        assert!(matches!(p[1], TelemetryEvent::ProfileMark { .. }));
        for stream in [&d, &s, &m, &p] {
            assert!(matches!(
                stream[0],
                TelemetryEvent::Dropped {
                    count: 3,
                    family: None
                }
            ));
        }
    }

    /// Satellite: a family-tagged drop record lands only on its own
    /// stream — the other trace files stay clean.
    #[test]
    fn family_tagged_drops_reach_only_their_own_stream() {
        use crate::event::EventFamily;
        let decision = VecSink::shared();
        let span = VecSink::shared();
        let metrics = VecSink::shared();
        let profile = VecSink::shared();
        let demux = DemuxSink::new(
            Some(decision.clone() as SharedSink),
            Some(span.clone() as SharedSink),
            Some(metrics.clone() as SharedSink),
            Some(profile.clone() as SharedSink),
        );
        for (family, count) in [
            (EventFamily::Decision, 1),
            (EventFamily::Span, 2),
            (EventFamily::Metrics, 3),
            (EventFamily::Profile, 4),
        ] {
            demux.emit(TelemetryEvent::Dropped {
                count,
                family: Some(family),
            });
        }
        for (sink, family, count) in [
            (&decision, EventFamily::Decision, 1),
            (&span, EventFamily::Span, 2),
            (&metrics, EventFamily::Metrics, 3),
            (&profile, EventFamily::Profile, 4),
        ] {
            let events = sink.take();
            assert_eq!(events.len(), 1, "{family:?} stream sees only its drop");
            assert_eq!(
                events[0],
                TelemetryEvent::Dropped {
                    count,
                    family: Some(family)
                }
            );
        }
    }

    #[test]
    fn fanout_duplicates_to_every_inner_sink() {
        let a = VecSink::shared();
        let b = VecSink::shared();
        let fan = FanoutSink::new(vec![a.clone() as SharedSink, b.clone() as SharedSink]);
        fan.emit(metric_event());
        fan.emit(dropped(1));
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 2);
    }
}
