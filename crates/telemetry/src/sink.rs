//! The sink contract and the two direct (synchronous) sinks.
//!
//! A sink must be cheap when unused: harnesses hold an
//! `Option<SharedSink>` and skip event construction entirely when it is
//! `None`, so a disabled sink costs one branch on the packet hot path.

use crate::event::TelemetryEvent;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Where telemetry events go.
///
/// `emit` must be callable from any thread; implementations choose their
/// own synchronization. Synchronous sinks (this module) may block on I/O
/// and are therefore only suitable for the simulator or for off-path
/// threads; the live packet path must go through
/// [`crate::ring::RingSink`], which never blocks.
pub trait TelemetrySink: Send + Sync {
    /// Record one event.
    fn emit(&self, event: TelemetryEvent);

    /// Make all previously emitted events durable (no-op by default).
    fn flush(&self) {}
}

/// A shareable handle to any sink.
pub type SharedSink = Arc<dyn TelemetrySink>;

/// In-memory sink for tests and programmatic inspection.
#[derive(Debug, Default)]
pub struct VecSink {
    events: Mutex<Vec<TelemetryEvent>>,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty sink, pre-wrapped for sharing.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Remove and return everything recorded so far.
    pub fn take(&self) -> Vec<TelemetryEvent> {
        std::mem::take(&mut self.events.lock().expect("VecSink poisoned"))
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.lock().expect("VecSink poisoned").len()
    }

    /// True when nothing has been recorded (or everything was taken).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TelemetrySink for VecSink {
    fn emit(&self, event: TelemetryEvent) {
        self.events.lock().expect("VecSink poisoned").push(event);
    }
}

/// Sink writing one JSON object per line to a buffered file.
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
    written: AtomicU64,
}

impl JsonlSink {
    /// Create (truncating) the file at `path`.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
            written: AtomicU64::new(0),
        })
    }

    /// Events written so far.
    pub fn written(&self) -> u64 {
        self.written.load(Ordering::Relaxed)
    }
}

impl TelemetrySink for JsonlSink {
    fn emit(&self, event: TelemetryEvent) {
        let line = event.to_json_line();
        let mut w = self.writer.lock().expect("JsonlSink poisoned");
        // Trace files are best-effort diagnostics: a full disk should not
        // take down the run it is observing.
        if writeln!(w, "{line}").is_ok() {
            self.written.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("JsonlSink poisoned").flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_core::time::SimTime;

    #[test]
    fn vec_sink_records_and_takes() {
        let sink = VecSink::shared();
        assert!(sink.is_empty());
        sink.emit(TelemetryEvent::Dropped { count: 1 });
        sink.emit(TelemetryEvent::Dropped { count: 2 });
        assert_eq!(sink.len(), 2);
        let events = sink.take();
        assert_eq!(events.len(), 2);
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path =
            std::env::temp_dir().join(format!("sg-telemetry-test-{}.jsonl", std::process::id()));
        let sink = JsonlSink::create(&path).expect("create trace file");
        sink.emit(TelemetryEvent::Alloc {
            at: SimTime::from_micros(10),
            container: sg_core::ids::ContainerId(2),
            cores: 3,
            freq_level: 1,
            freq_ghz: 1.8,
        });
        sink.emit(TelemetryEvent::Dropped { count: 0 });
        assert_eq!(sink.written(), 2);
        sink.flush();
        let body = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<_> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            TelemetryEvent::from_json_line(line).expect("every line parses");
        }
        let _ = std::fs::remove_file(&path);
    }
}
