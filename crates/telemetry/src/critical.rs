//! Critical-path attribution over recorded span trees.
//!
//! For each deadline-violating request, walk its span tree from the
//! root to the hop that dominated the latency and classify the loss:
//! did the request lose its time in a connection-pool queue, in local
//! service, on the network, or running at base frequency while already
//! behind schedule (the boost had not landed)? The per-container
//! attribution histogram this produces reproduces the paper's Fig. 5b
//! inversion: under threadpool exhaustion the *upstream* container's
//! `execTime` inflates, but the walk descends through the downstream
//! window and charges the loss to the *downstream* container's
//! pool-queue class, where the single-connection edge actually
//! serialized the work.

use crate::agg::{topk_key, LatencyDigest, TopK};
use crate::event::TelemetryEvent;
use crate::span::SpanRecord;
use serde_json::{json, Value};
use sg_core::ids::ContainerId;
use sg_core::time::SimDuration;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Where a violating request lost its time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LossClass {
    /// Queued in a connection pool (the hidden threadpool dependency).
    PoolQueue,
    /// Local CPU work dominated.
    Service,
    /// Local CPU work dominated *and* the hop ran at base frequency with
    /// negative slack: the request was already lagging but the
    /// FirstResponder boost had not landed yet.
    PreBoostFreq,
    /// Network delay into the hop dominated.
    Network,
}

impl LossClass {
    /// Stable name (used in reports and folded-stack frames).
    pub fn name(self) -> &'static str {
        match self {
            LossClass::PoolQueue => "pool_queue",
            LossClass::Service => "service",
            LossClass::PreBoostFreq => "pre_boost_freq",
            LossClass::Network => "network",
        }
    }

    /// Stable small-integer code, used when a class is packed into a
    /// heavy-hitter sketch key (see [`crate::agg::topk_key`]). Code 0 is
    /// reserved for "no class" (whole-request loss).
    pub fn code(self) -> u8 {
        match self {
            LossClass::PoolQueue => 1,
            LossClass::Service => 2,
            LossClass::PreBoostFreq => 3,
            LossClass::Network => 4,
        }
    }

    /// Inverse of [`LossClass::code`]; `None` for 0 or unknown codes.
    pub fn from_code(code: u8) -> Option<LossClass> {
        match code {
            1 => Some(LossClass::PoolQueue),
            2 => Some(LossClass::Service),
            3 => Some(LossClass::PreBoostFreq),
            4 => Some(LossClass::Network),
            _ => None,
        }
    }
}

/// Attribution bucket for one `(container, class)` pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Attribution {
    /// Violating requests whose critical path terminated here.
    pub count: u64,
    /// Total loss (latency beyond the deadline), nanoseconds.
    pub loss_ns: u64,
}

/// The span-side report `sg-trace` renders: tree integrity, violation
/// attribution, and folded stacks for flamegraph tooling.
#[derive(Debug, Default)]
pub struct SpanReport {
    /// Span records consumed.
    pub spans: u64,
    /// Traces whose root request span was recorded.
    pub traces: u64,
    /// Traces with hop spans but no root (request still in flight when
    /// the run ended) — reported, but not an audit failure.
    pub incomplete_traces: u64,
    /// The deadline used to define a violation, nanoseconds.
    pub qos_ns: u64,
    /// True when no deadline was supplied and `qos_ns` was
    /// self-calibrated to the p99 root duration.
    pub qos_derived: bool,
    /// Root spans whose duration exceeded the deadline.
    pub violations: u64,
    /// Violations whose tree was too incomplete to attribute.
    pub unattributed: u64,
    /// Loss histogram keyed by `(container, class)`.
    pub attribution: BTreeMap<(u32, LossClass), Attribution>,
    /// Folded critical-path stacks (`client;c0;c1;pool_queue` → loss ns),
    /// one line per unique path, inferno/speedscope compatible.
    pub folded: BTreeMap<String, u64>,
    /// Sorted root-span durations, ns (for percentile rendering).
    pub root_durations: Vec<u64>,
    /// Structural: child spans not nested inside their parent.
    pub nesting_violations: u64,
    /// Structural: spans with `end < start`.
    pub negative_spans: u64,
    /// Structural: duplicate span ids within a trace.
    pub duplicate_spans: u64,
    /// Structural: traces with more than one root span.
    pub multi_root_traces: u64,
    /// Events the recording pipeline dropped (from `Dropped` records).
    pub dropped: u64,
}

impl SpanReport {
    /// Build a report from a telemetry event stream, keeping span and
    /// drop records and ignoring decision events. `qos` of `None`
    /// self-calibrates the deadline to the p99 root duration.
    pub fn from_events<I: IntoIterator<Item = TelemetryEvent>>(
        events: I,
        qos: Option<SimDuration>,
    ) -> Self {
        let mut records = Vec::new();
        let mut dropped = 0;
        for event in events {
            match event {
                TelemetryEvent::Span(r) => records.push(r),
                TelemetryEvent::Dropped { count, .. } => dropped += count,
                _ => {}
            }
        }
        let mut report = Self::from_records(&records, qos);
        report.dropped = dropped;
        report
    }

    /// Build a report from bare span records.
    pub fn from_records(records: &[SpanRecord], qos: Option<SimDuration>) -> Self {
        let mut report = SpanReport {
            spans: records.len() as u64,
            ..SpanReport::default()
        };

        // Group by trace, preserving record order within each trace.
        let mut traces: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
        for r in records {
            if r.end < r.start {
                report.negative_spans += 1;
            }
            traces.entry(r.trace).or_default().push(r);
        }

        // Integrity pass + root-duration collection.
        for spans in traces.values() {
            let mut ids: Vec<u64> = spans.iter().map(|s| s.span).collect();
            ids.sort_unstable();
            report.duplicate_spans += ids.windows(2).filter(|w| w[0] == w[1]).count() as u64;

            let roots: Vec<&&SpanRecord> = spans.iter().filter(|s| s.is_root()).collect();
            match roots.len() {
                0 => report.incomplete_traces += 1,
                1 => {
                    report.traces += 1;
                    report.root_durations.push(roots[0].duration().as_nanos());
                }
                _ => {
                    report.multi_root_traces += 1;
                    report.traces += 1;
                    report.root_durations.push(roots[0].duration().as_nanos());
                }
            }

            for child in spans.iter() {
                let Some(parent_id) = child.parent else {
                    continue;
                };
                // A missing parent is an incomplete trace, not a nesting
                // violation (children respond before their parents, so a
                // truncated run records them first).
                if let Some(parent) = spans.iter().find(|s| s.span == parent_id) {
                    if child.start < parent.start || child.end > parent.end {
                        report.nesting_violations += 1;
                    }
                }
            }
        }
        report.root_durations.sort_unstable();

        report.qos_ns = match qos {
            Some(d) => d.as_nanos(),
            None => {
                report.qos_derived = true;
                percentile(&report.root_durations, 0.99).unwrap_or(u64::MAX)
            }
        };

        // Critical-path walk over every violating trace.
        for spans in traces.values() {
            let Some(root) = spans.iter().find(|s| s.is_root()) else {
                continue;
            };
            let duration = root.duration().as_nanos();
            if duration <= report.qos_ns {
                continue;
            }
            report.violations += 1;
            let excess = duration - report.qos_ns;
            match walk_critical_path(root, spans) {
                Some((container, class, path)) => {
                    let bucket = report.attribution.entry((container, class)).or_default();
                    bucket.count += 1;
                    bucket.loss_ns += excess;
                    let mut stack = String::from("client");
                    for c in path {
                        let _ = write!(stack, ";c{c}");
                    }
                    let _ = write!(stack, ";{}", class.name());
                    *report.folded.entry(stack).or_insert(0) += excess;
                }
                None => report.unattributed += 1,
            }
        }
        report
    }

    /// Total loss across all attributed violations, ns.
    pub fn total_loss_ns(&self) -> u64 {
        self.attribution.values().map(|a| a.loss_ns).sum()
    }

    /// The `(container, class)` bucket carrying the most loss.
    pub fn dominant(&self) -> Option<((u32, LossClass), Attribution)> {
        self.attribution
            .iter()
            .max_by_key(|(_, a)| a.loss_ns)
            .map(|(k, a)| (*k, *a))
    }

    /// Percentile of the root-span duration distribution, ns.
    pub fn root_percentile(&self, q: f64) -> Option<u64> {
        percentile(&self.root_durations, q)
    }

    /// Structural problems that should fail an automated gate. Incomplete
    /// traces are *not* listed — a run cut off mid-request is normal.
    pub fn audit(&self) -> Vec<String> {
        let mut issues = Vec::new();
        if self.negative_spans > 0 {
            issues.push(format!(
                "{} span(s) end before they start",
                self.negative_spans
            ));
        }
        if self.duplicate_spans > 0 {
            issues.push(format!(
                "{} duplicate span id(s) within a trace",
                self.duplicate_spans
            ));
        }
        if self.multi_root_traces > 0 {
            issues.push(format!(
                "{} trace(s) with more than one root span",
                self.multi_root_traces
            ));
        }
        if self.nesting_violations > 0 {
            issues.push(format!(
                "{} child span(s) not nested inside their parent",
                self.nesting_violations
            ));
        }
        if self.dropped > 0 {
            issues.push(format!(
                "{} event(s) dropped by the recording pipeline",
                self.dropped
            ));
        }
        issues
    }

    /// The folded-stack file body (inferno/speedscope `collapse` format).
    pub fn folded_lines(&self) -> String {
        let mut out = String::new();
        for (stack, loss) in &self.folded {
            let _ = writeln!(out, "{stack} {loss}");
        }
        out
    }

    /// Machine-readable summary for `sg-trace --json`.
    pub fn to_json(&self) -> Value {
        let attribution: Vec<Value> = self
            .attribution
            .iter()
            .map(|((container, class), a)| {
                json!({
                    "container": *container,
                    "class": class.name(),
                    "count": a.count,
                    "loss_ns": a.loss_ns,
                })
            })
            .collect();
        let folded: Vec<Value> = self
            .folded
            .iter()
            .map(|(stack, loss)| json!({ "stack": stack.as_str(), "loss_ns": *loss }))
            .collect();
        json!({
            "spans": self.spans,
            "traces": self.traces,
            "incomplete_traces": self.incomplete_traces,
            "qos_ns": self.qos_ns,
            "qos_derived": self.qos_derived,
            "violations": self.violations,
            "unattributed": self.unattributed,
            "total_loss_ns": self.total_loss_ns(),
            "root_p50_ns": self.root_percentile(0.50),
            "root_p99_ns": self.root_percentile(0.99),
            "attribution": attribution,
            "folded": folded,
            "dropped": self.dropped,
            "audit": self.audit(),
        })
    }

    /// Render the human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "spans: {} records, {} complete traces, {} incomplete",
            self.spans, self.traces, self.incomplete_traces
        );
        if let (Some(p50), Some(p99)) = (self.root_percentile(0.50), self.root_percentile(0.99)) {
            let _ = writeln!(out, "  root duration p50 {p50} ns, p99 {p99} ns");
        }
        let _ = writeln!(
            out,
            "  deadline: {} ns{}",
            self.qos_ns,
            if self.qos_derived {
                " (self-calibrated p99)"
            } else {
                ""
            }
        );
        let _ = writeln!(
            out,
            "  {} violating request(s), {} unattributable",
            self.violations, self.unattributed
        );
        if self.dropped > 0 {
            let _ = writeln!(
                out,
                "  !! {} events dropped by the recording pipeline",
                self.dropped
            );
        }

        let _ = writeln!(out, "\ncritical-path attribution (container / class):");
        if self.attribution.is_empty() {
            let _ = writeln!(out, "  (no attributed violations)");
        }
        let total = self.total_loss_ns().max(1);
        for ((container, class), a) in &self.attribution {
            let _ = writeln!(
                out,
                "  c{container:<4} {:<16} {:>8} requests  {:>14} ns lost ({:>5.1}%)",
                class.name(),
                a.count,
                a.loss_ns,
                a.loss_ns as f64 * 100.0 / total as f64
            );
        }

        let _ = writeln!(out, "\ncritical-path stacks (folded):");
        if self.folded.is_empty() {
            let _ = writeln!(out, "  (none)");
        }
        for (stack, loss) in &self.folded {
            let _ = writeln!(out, "  {stack} {loss}");
        }
        out
    }
}

fn percentile(sorted: &[u64], q: f64) -> Option<u64> {
    if sorted.is_empty() {
        return None;
    }
    let rank = ((q.clamp(0.0, 1.0)) * (sorted.len() - 1) as f64).round() as usize;
    Some(sorted[rank])
}

/// Follow the dominant component hop by hop. Returns the terminal
/// `(container, class)` and the container path from the frontend down.
fn walk_critical_path(
    root: &SpanRecord,
    spans: &[&SpanRecord],
) -> Option<(u32, LossClass, Vec<u32>)> {
    let mut path = Vec::new();
    // The request root has exactly one child: the frontend hop.
    let mut current = *dominant_child(root.span, spans)?;
    loop {
        let container = current.container?.0;
        path.push(container);

        let service_class = if current.freq_level == 0 && current.slack_ns < 0 {
            LossClass::PreBoostFreq
        } else {
            LossClass::Service
        };
        let components = [
            (current.net_in.as_nanos(), LossClass::Network),
            (current.conn_wait.as_nanos(), LossClass::PoolQueue),
            (current.service.as_nanos(), service_class),
        ];
        let &(local_max, local_class) = components
            .iter()
            .max_by_key(|(ns, _)| *ns)
            .expect("components is non-empty");

        if current.downstream.as_nanos() > local_max {
            match dominant_child(current.span, spans) {
                Some(child) => {
                    current = *child;
                    continue;
                }
                // Downstream dominated but its spans are missing
                // (truncated run): nothing trustworthy to attribute.
                None => return None,
            }
        }
        return Some((container, local_class, path));
    }
}

/// The child of `parent` with the largest total footprint (its own
/// duration plus the queueing and network spent reaching it).
fn dominant_child<'s>(parent: u64, spans: &'s [&SpanRecord]) -> Option<&'s &'s SpanRecord> {
    spans
        .iter()
        .filter(|s| s.parent == Some(parent))
        .max_by_key(|s| s.net_in.as_nanos() + s.conn_wait.as_nanos() + s.duration().as_nanos())
}

/// Incremental critical-path attribution for unbounded span streams.
///
/// [`SpanReport`] groups a whole trace file in memory before walking
/// critical paths; `sg-trace watch` cannot afford that on a multi-GB
/// (or still-growing) export. This walker buffers spans per trace only
/// until the trace's **root** span arrives — both substrates emit the
/// root last, at client delivery — then finalizes the trace
/// immediately: the root duration feeds a mergeable [`LatencyDigest`]
/// and, when the request violated the deadline, the excess latency is
/// charged to the dominant hop's `(container, class)` key in a
/// [`TopK`] sketch. Traces whose root never arrives are bounded by
/// `max_pending`: the oldest (lowest trace id) is evicted and counted,
/// so memory stays flat no matter how long the tail runs.
#[derive(Debug)]
pub struct StreamingAttributor {
    qos: SimDuration,
    max_pending: usize,
    pending: BTreeMap<u64, Vec<SpanRecord>>,
    /// Root-span duration digest (mergeable; default resolution).
    pub digest: LatencyDigest,
    /// Heavy-hitter sketch over `(container, class)` violation loss.
    pub topk: TopK,
    /// Traces finalized (root span seen).
    pub traces: u64,
    /// Finalized traces beyond the deadline.
    pub violations: u64,
    /// Violations whose tree was too incomplete to attribute.
    pub unattributed: u64,
    /// Rootless traces evicted to bound memory.
    pub evicted: u64,
}

impl StreamingAttributor {
    /// Attributor judging violations against `qos`, tracking
    /// `topk_capacity` heavy hitters and buffering at most
    /// `max_pending` rootless traces.
    pub fn new(qos: SimDuration, topk_capacity: usize, max_pending: usize) -> Self {
        StreamingAttributor {
            qos,
            max_pending: max_pending.max(1),
            pending: BTreeMap::new(),
            digest: LatencyDigest::with_default_resolution(),
            topk: TopK::new(topk_capacity),
            traces: 0,
            violations: 0,
            unattributed: 0,
            evicted: 0,
        }
    }

    /// The deadline violations are judged against.
    pub fn qos(&self) -> SimDuration {
        self.qos
    }

    /// Rootless traces currently buffered.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Feed one span record. Root spans finalize their trace.
    pub fn push(&mut self, record: SpanRecord) {
        if record.is_root() {
            let mut spans = self.pending.remove(&record.trace).unwrap_or_default();
            spans.push(record);
            self.finalize(&spans);
            return;
        }
        self.pending.entry(record.trace).or_default().push(record);
        while self.pending.len() > self.max_pending {
            self.pending.pop_first();
            self.evicted += 1;
        }
    }

    fn finalize(&mut self, spans: &[SpanRecord]) {
        let Some(root) = spans.iter().find(|s| s.is_root()) else {
            return;
        };
        self.traces += 1;
        let duration = root.duration();
        self.digest.record(duration);
        if duration <= self.qos {
            return;
        }
        self.violations += 1;
        let excess = duration.as_nanos() - self.qos.as_nanos();
        let refs: Vec<&SpanRecord> = spans.iter().collect();
        match walk_critical_path(root, &refs) {
            Some((container, class, _path)) => {
                self.topk
                    .observe(topk_key(ContainerId(container), Some(class)), excess);
            }
            None => self.unattributed += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_core::ids::{ContainerId, NodeId};
    use sg_core::time::SimTime;

    fn span(
        trace: u64,
        id: u64,
        parent: Option<u64>,
        container: Option<u32>,
        start_us: u64,
        end_us: u64,
    ) -> SpanRecord {
        SpanRecord {
            trace,
            span: id,
            parent,
            container: container.map(ContainerId),
            node: container.map(|_| NodeId(0)),
            start: SimTime::from_micros(start_us),
            end: SimTime::from_micros(end_us),
            net_in: SimDuration::ZERO,
            conn_wait: SimDuration::ZERO,
            service: SimDuration::ZERO,
            downstream: SimDuration::ZERO,
            freq_level: 0,
            slack_ns: 0,
        }
    }

    /// A two-hop trace where the downstream container's pool queue holds
    /// the time: root [0, 2000], frontend hop with small service and a
    /// large downstream window, child hop with a large conn_wait.
    fn pool_queue_trace() -> Vec<SpanRecord> {
        let root = span(5, 0, None, None, 0, 2000);
        let mut front = span(5, 1, Some(0), Some(0), 20, 1980);
        front.net_in = SimDuration::from_micros(20);
        front.service = SimDuration::from_micros(300);
        front.downstream = SimDuration::from_micros(1660);
        let mut child = span(5, 2, Some(1), Some(1), 1600, 1750);
        child.net_in = SimDuration::from_micros(20);
        child.conn_wait = SimDuration::from_micros(1450);
        child.service = SimDuration::from_micros(150);
        vec![root, front, child]
    }

    #[test]
    fn attributes_pool_queue_to_downstream_container() {
        let records = pool_queue_trace();
        let report = SpanReport::from_records(&records, Some(SimDuration::from_millis(1)));
        assert_eq!(report.traces, 1);
        assert_eq!(report.violations, 1);
        assert_eq!(report.unattributed, 0);
        let ((container, class), a) = report.dominant().expect("one bucket");
        assert_eq!(container, 1, "loss must land on the downstream container");
        assert_eq!(class, LossClass::PoolQueue);
        assert_eq!(a.count, 1);
        assert_eq!(a.loss_ns, 1_000_000); // 2ms latency - 1ms deadline
        assert_eq!(report.folded.len(), 1);
        let (stack, loss) = report.folded.iter().next().unwrap();
        assert_eq!(stack, "client;c0;c1;pool_queue");
        assert_eq!(*loss, 1_000_000);
        assert!(report.audit().is_empty(), "{:?}", report.audit());
    }

    #[test]
    fn classifies_pre_boost_frequency_loss() {
        let root = span(1, 0, None, None, 0, 2000);
        let mut hop = span(1, 1, Some(0), Some(0), 20, 1990);
        hop.service = SimDuration::from_micros(1900);
        hop.net_in = SimDuration::from_micros(20);
        hop.freq_level = 0;
        hop.slack_ns = -500_000;
        let report = SpanReport::from_records(&[root, hop], Some(SimDuration::from_millis(1)));
        let ((c, class), _) = report.dominant().unwrap();
        assert_eq!((c, class), (0, LossClass::PreBoostFreq));

        // Same shape but boosted: plain service loss.
        let mut boosted = [root, hop];
        boosted[1].freq_level = 6;
        let report = SpanReport::from_records(&boosted, Some(SimDuration::from_millis(1)));
        let ((_, class), _) = report.dominant().unwrap();
        assert_eq!(class, LossClass::Service);
    }

    #[test]
    fn incomplete_traces_are_counted_not_failed() {
        // Child recorded, root missing (run ended mid-request).
        let orphan = span(9, 3, Some(2), Some(1), 100, 200);
        let report = SpanReport::from_records(&[orphan], Some(SimDuration::from_millis(1)));
        assert_eq!(report.incomplete_traces, 1);
        assert_eq!(report.traces, 0);
        assert!(report.audit().is_empty());
    }

    #[test]
    fn structural_problems_fail_the_audit() {
        let root = span(1, 0, None, None, 100, 200);
        let escapee = span(1, 1, Some(0), Some(0), 50, 300); // outside parent
        let report = SpanReport::from_records(&[root, escapee], Some(SimDuration::from_millis(1)));
        assert_eq!(report.nesting_violations, 1);
        assert!(!report.audit().is_empty());

        let backwards = span(2, 0, None, None, 300, 100);
        let report = SpanReport::from_records(&[backwards], Some(SimDuration::from_millis(1)));
        assert_eq!(report.negative_spans, 1);
        assert!(!report.audit().is_empty());

        let dup_a = span(3, 7, None, None, 0, 10);
        let dup_b = span(3, 7, Some(7), Some(0), 2, 8);
        let report = SpanReport::from_records(&[dup_a, dup_b], Some(SimDuration::from_millis(1)));
        assert_eq!(report.duplicate_spans, 1);
        assert!(!report.audit().is_empty());
    }

    #[test]
    fn qos_self_calibrates_to_p99() {
        let mut records = Vec::new();
        for i in 0..100u64 {
            records.push(span(i, i * 2, None, None, 0, 100 + i));
        }
        let report = SpanReport::from_records(&records, None);
        assert!(report.qos_derived);
        // Nearest-rank p99 over 100 samples: round(0.99 * 99) = index 98.
        assert_eq!(report.qos_ns, (100 + 98) * 1000);
    }

    #[test]
    fn from_events_collects_spans_and_drops() {
        let events = vec![
            TelemetryEvent::Span(span(1, 0, None, None, 0, 100)),
            TelemetryEvent::Dropped {
                count: 4,
                family: None,
            },
        ];
        let report = SpanReport::from_events(events, Some(SimDuration::from_millis(1)));
        assert_eq!(report.spans, 1);
        assert_eq!(report.dropped, 4);
        assert!(!report.audit().is_empty(), "drops must fail the audit");
        let v = report.to_json();
        assert_eq!(v.get("dropped").and_then(Value::as_u64), Some(4));
    }

    #[test]
    fn render_survives_empty_input() {
        let report = SpanReport::from_records(&[], None);
        assert!(report.render().contains("0 records"));
        assert!(report.folded_lines().is_empty());
    }
}
