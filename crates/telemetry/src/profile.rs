//! `sg-profile`: always-on phase-scoped self-profiling.
//!
//! The controller pillars (decision traces, spans, gauge timelines)
//! observe the *workload*; this module observes the *runtime itself* —
//! where cycles go inside the sim event loop and the live driver — so
//! the cluster-scale and hot-path refactors (ROADMAP items 1 and 3)
//! start from measurements instead of guesses.
//!
//! Two recorders share one report shape:
//!
//! * [`SimProfiler`] — owned by the single-threaded simulator. Plain
//!   `u64` counters, with per-phase *sampled* timing: every event is
//!   counted (one increment + mask test), but only 1-in-2^k events per
//!   high-frequency phase pay the two `Instant::now()` calls. Phase
//!   totals are scaled estimates (`sampled_ns × count / sampled`),
//!   which keeps the enabled overhead inside the ≤ 2% `sim_trial`
//!   budget enforced by `sg-bench`.
//! * [`LiveProfiler`] — shared (`Arc`) across the live backend's
//!   threads. Relaxed atomics, every call timed (live call rates are
//!   thousands per second, not millions), log2-bucket histograms for
//!   p50/p99 without storing samples, and a [`LiveProfiler::snapshot`]
//!   cheap enough to serve from the Prometheus scrape mid-run.
//!
//! The disabled guard follows the span-layer discipline: a profiler the
//! caller never constructed is an `Option::None` test on the hot path —
//! one predictable branch, no atomics, no clock reads. `sg-bench`'s
//! profiler-off `fr_hook` and `sim_trial` scenarios pin that contract.
//!
//! A finished report flows through the normal telemetry wire
//! ([`TelemetryEvent::ProfileMeta`] / [`TelemetryEvent::ProfilePhase`] /
//! [`TelemetryEvent::ProfileMark`]) into a schema-versioned JSONL file
//! (`sg-loadtest --profile-out`), and `sg-trace --profile` renders the
//! phase table, watermark summary, folded flamegraph stacks, and the
//! self-overhead line, with an audit that fails the build when the
//! report is inconsistent or (live) phase coverage falls below 90% of
//! wall time.

use crate::event::TelemetryEvent;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Version stamped into [`TelemetryEvent::ProfileMeta`].
///
/// v2 added the per-level timer-wheel occupancy watermarks
/// (`wheel_l*_high_water`, `wheel_overflow_high_water`) when the sim
/// engine's calendar queue became the default backend. v1 files remain
/// readable: every v1 mark kept its wire name — `heap_depth_high_water`
/// now reports the *total pending events* high-water on either queue
/// backend — and readers (`sg-trace`, `sg-timeline`) accept both
/// schema headers.
pub const PROFILE_SCHEMA_VERSION: u32 = 2;

/// Schema string stamped as line 1 of `--profile-out` files.
pub const PROFILE_SCHEMA: &str = "sg-profile/v2";

/// Previous schema string, still accepted by readers.
pub const PROFILE_SCHEMA_V1: &str = "sg-profile/v1";

/// Minimum fraction of wall time the phase totals must cover for a
/// live-substrate report to pass [`ProfileReport::audit`].
pub const LIVE_COVERAGE_FLOOR: f64 = 0.90;

/// A profiled runtime phase. Sim phases partition the event-dispatch
/// loop by event class; live phases cover the hot paths of the
/// wall-clock driver's thread zoo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum ProfilePhase {
    /// Sim: `ClientArrival` dispatch (includes generating the next
    /// open-loop arrival and root invocation setup).
    SimArrival = 0,
    /// Sim: `Deliver(Request)` dispatch — the sim-side FR-hook path.
    SimDeliverRequest = 1,
    /// Sim: `Deliver(Response)` dispatch (pool release, retire checks).
    SimDeliverResponse = 2,
    /// Sim: `PhaseComplete` dispatch (processor-sharing queue pops).
    SimPhaseComplete = 3,
    /// Sim: `ControllerTick` dispatch — one full decision cycle
    /// (snapshot, controller, action application, metrics sweep).
    SimControllerTick = 4,
    /// Sim: `FreqApply` dispatch (deferred DVFS landings).
    SimFreqApply = 5,
    /// Sim: `FaultStart`/`FaultEnd` dispatch.
    SimFault = 6,
    /// Live: one delay-thread FR-hook delivery (slack computation,
    /// `on_packet`, boost application, queue push).
    FrHook = 7,
    /// Live: time a worker spent blocked in `LiveConnPool::acquire`.
    PoolWait = 8,
    /// Live: one `handle_job` execution on a worker thread.
    WorkerService = 9,
    /// Live: worker time blocked waiting for the next job.
    WorkerIdle = 10,
    /// Live: delay-line timer slop — actual minus requested fire time.
    TimerSlop = 11,
    /// Live: one controller tick (snapshot, `on_tick`, apply).
    LiveTick = 12,
}

/// Number of phases (array sizing).
pub const N_PHASES: usize = 13;

impl ProfilePhase {
    /// Every phase, in index order.
    pub const ALL: [ProfilePhase; N_PHASES] = [
        ProfilePhase::SimArrival,
        ProfilePhase::SimDeliverRequest,
        ProfilePhase::SimDeliverResponse,
        ProfilePhase::SimPhaseComplete,
        ProfilePhase::SimControllerTick,
        ProfilePhase::SimFreqApply,
        ProfilePhase::SimFault,
        ProfilePhase::FrHook,
        ProfilePhase::PoolWait,
        ProfilePhase::WorkerService,
        ProfilePhase::WorkerIdle,
        ProfilePhase::TimerSlop,
        ProfilePhase::LiveTick,
    ];

    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            ProfilePhase::SimArrival => "sim_arrival",
            ProfilePhase::SimDeliverRequest => "sim_deliver_request",
            ProfilePhase::SimDeliverResponse => "sim_deliver_response",
            ProfilePhase::SimPhaseComplete => "sim_phase_complete",
            ProfilePhase::SimControllerTick => "sim_controller_tick",
            ProfilePhase::SimFreqApply => "sim_freq_apply",
            ProfilePhase::SimFault => "sim_fault",
            ProfilePhase::FrHook => "fr_hook",
            ProfilePhase::PoolWait => "pool_wait",
            ProfilePhase::WorkerService => "worker_service",
            ProfilePhase::WorkerIdle => "worker_idle",
            ProfilePhase::TimerSlop => "timer_slop",
            ProfilePhase::LiveTick => "live_tick",
        }
    }

    /// Folded flamegraph stack for this phase.
    pub fn stack(self) -> &'static str {
        match self {
            ProfilePhase::SimArrival => "sim;dispatch;arrival",
            ProfilePhase::SimDeliverRequest => "sim;dispatch;deliver_request",
            ProfilePhase::SimDeliverResponse => "sim;dispatch;deliver_response",
            ProfilePhase::SimPhaseComplete => "sim;dispatch;phase_complete",
            ProfilePhase::SimControllerTick => "sim;dispatch;controller_tick",
            ProfilePhase::SimFreqApply => "sim;dispatch;freq_apply",
            ProfilePhase::SimFault => "sim;dispatch;fault",
            ProfilePhase::FrHook => "live;delay_line;fr_hook",
            ProfilePhase::PoolWait => "live;worker;call_child;pool_wait",
            ProfilePhase::WorkerService => "live;worker;service",
            ProfilePhase::WorkerIdle => "live;worker;idle",
            ProfilePhase::TimerSlop => "live;delay_line;timer_slop",
            ProfilePhase::LiveTick => "live;tick;controller",
        }
    }

    /// Parse a wire name.
    pub fn from_wire(s: &str) -> Option<ProfilePhase> {
        ProfilePhase::ALL.into_iter().find(|p| p.name() == s)
    }

    /// Whether the phase measures *blocked* time (idle, lock waits,
    /// timer slop) rather than work done. Blocked phases are excluded
    /// from the live coverage sum — a worker's wall is already fully
    /// accounted by service + idle, and slop/pool-wait overlap those.
    pub fn is_blocking(self) -> bool {
        matches!(
            self,
            ProfilePhase::PoolWait | ProfilePhase::TimerSlop | ProfilePhase::WorkerIdle
        )
    }
}

/// A watermark or counter reported alongside the phase table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum ProfileMark {
    /// Sim: pending-event high-water mark (entries), regardless of
    /// queue backend. Named for the original binary-heap engine; under
    /// the timer wheel it is the same quantity (total events pending),
    /// so the wire name is kept for cross-version comparability.
    HeapDepthHighWater = 0,
    /// Sim: invocation-table high-water mark (slots).
    InvocationHighWater = 1,
    /// Sim: `SimBuffers` adoptions that reused a warm allocation.
    BuffersReuseHit = 2,
    /// Sim: `SimBuffers` adoptions that had to allocate cold.
    BuffersReuseMiss = 3,
    /// Live: telemetry-ring occupancy high-water mark (entries).
    RingOccupancyHighWater = 4,
    /// Live: telemetry-ring drops across all families (drop pressure).
    RingDropped = 5,
    /// Estimated profiler self-overhead in nanoseconds (calibrated
    /// timer-pair cost × number of timed sections).
    SelfOverheadNs = 6,
    /// Sim (wheel backend, schema v2+): level-0 slot-occupancy
    /// high-water mark (entries resident across the level's 64 slots).
    WheelL0HighWater = 7,
    /// Sim (wheel): level-1 occupancy high-water mark.
    WheelL1HighWater = 8,
    /// Sim (wheel): level-2 occupancy high-water mark.
    WheelL2HighWater = 9,
    /// Sim (wheel): level-3 occupancy high-water mark.
    WheelL3HighWater = 10,
    /// Sim (wheel): level-4 occupancy high-water mark.
    WheelL4HighWater = 11,
    /// Sim (wheel): level-5 occupancy high-water mark.
    WheelL5HighWater = 12,
    /// Sim (wheel): overflow-bucket occupancy high-water mark (events
    /// beyond the wheel horizon, promoted back in as time advances).
    WheelOverflowHighWater = 13,
}

/// Number of marks (array sizing).
pub const N_MARKS: usize = 14;

impl ProfileMark {
    /// Every mark, in index order.
    pub const ALL: [ProfileMark; N_MARKS] = [
        ProfileMark::HeapDepthHighWater,
        ProfileMark::InvocationHighWater,
        ProfileMark::BuffersReuseHit,
        ProfileMark::BuffersReuseMiss,
        ProfileMark::RingOccupancyHighWater,
        ProfileMark::RingDropped,
        ProfileMark::SelfOverheadNs,
        ProfileMark::WheelL0HighWater,
        ProfileMark::WheelL1HighWater,
        ProfileMark::WheelL2HighWater,
        ProfileMark::WheelL3HighWater,
        ProfileMark::WheelL4HighWater,
        ProfileMark::WheelL5HighWater,
        ProfileMark::WheelOverflowHighWater,
    ];

    /// The per-level wheel-occupancy marks, in level order. Indexable by
    /// engine level so emitters can zip against
    /// `Engine::wheel_high_water()`.
    pub const WHEEL_LEVELS: [ProfileMark; 6] = [
        ProfileMark::WheelL0HighWater,
        ProfileMark::WheelL1HighWater,
        ProfileMark::WheelL2HighWater,
        ProfileMark::WheelL3HighWater,
        ProfileMark::WheelL4HighWater,
        ProfileMark::WheelL5HighWater,
    ];

    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            ProfileMark::HeapDepthHighWater => "heap_depth_high_water",
            ProfileMark::InvocationHighWater => "invocation_high_water",
            ProfileMark::BuffersReuseHit => "buffers_reuse_hit",
            ProfileMark::BuffersReuseMiss => "buffers_reuse_miss",
            ProfileMark::RingOccupancyHighWater => "ring_occupancy_high_water",
            ProfileMark::RingDropped => "ring_dropped",
            ProfileMark::SelfOverheadNs => "self_overhead_ns",
            ProfileMark::WheelL0HighWater => "wheel_l0_high_water",
            ProfileMark::WheelL1HighWater => "wheel_l1_high_water",
            ProfileMark::WheelL2HighWater => "wheel_l2_high_water",
            ProfileMark::WheelL3HighWater => "wheel_l3_high_water",
            ProfileMark::WheelL4HighWater => "wheel_l4_high_water",
            ProfileMark::WheelL5HighWater => "wheel_l5_high_water",
            ProfileMark::WheelOverflowHighWater => "wheel_overflow_high_water",
        }
    }

    /// Parse a wire name.
    pub fn from_wire(s: &str) -> Option<ProfileMark> {
        ProfileMark::ALL.into_iter().find(|m| m.name() == s)
    }
}

/// Log2-bucketed latency histogram: bucket `k` holds durations in
/// `[2^(k-1), 2^k)` ns (bucket 0 is exactly 0 ns). Quantiles come back
/// as the geometric midpoint of the covering bucket — ±50% resolution,
/// plenty for a "where do cycles go" report, at 512 bytes per phase.
#[derive(Debug, Clone)]
pub struct Hist {
    buckets: [u64; 64],
}

impl Default for Hist {
    fn default() -> Self {
        Hist { buckets: [0; 64] }
    }
}

fn bucket_of(ns: u64) -> usize {
    (64 - ns.leading_zeros() as usize).min(63)
}

/// Representative value for bucket `idx` (midpoint of its range).
fn bucket_value(idx: usize) -> u64 {
    match idx {
        0 => 0,
        1 => 1,
        _ => {
            let lo = 1u64 << (idx - 1);
            lo + (lo >> 1)
        }
    }
}

impl Hist {
    /// Count one duration.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.buckets[bucket_of(ns)] += 1;
    }

    /// Quantile `q` in `[0, 1]` (nearest-rank over buckets); 0 if empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_value(idx);
            }
        }
        bucket_value(63)
    }
}

/// Summary row for one phase in a [`ProfileReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseStat {
    /// Which phase.
    pub phase: ProfilePhase,
    /// Times the phase ran.
    pub count: u64,
    /// How many runs were actually timed (`== count` when unsampled).
    pub sampled: u64,
    /// Total nanoseconds; a scaled estimate when `sampled < count`.
    pub total_ns: u64,
    /// Median timed duration (log2-bucket resolution).
    pub p50_ns: u64,
    /// 99th-percentile timed duration (log2-bucket resolution).
    pub p99_ns: u64,
    /// Slowest timed duration (exact).
    pub max_ns: u64,
}

/// A finished self-profile: what `--profile-out` serializes and
/// `sg-trace --profile` renders.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// [`PROFILE_SCHEMA_VERSION`] at write time.
    pub version: u32,
    /// `"sim"` or `"live"`.
    pub substrate: String,
    /// Measured wall time of the run in nanoseconds.
    pub wall_ns: u64,
    /// Phases with `count > 0`, in taxonomy order.
    pub phases: Vec<PhaseStat>,
    /// Watermarks and counters, in taxonomy order.
    pub marks: Vec<(ProfileMark, u64)>,
}

/// Format nanoseconds human-readably (aligned, 9 chars).
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 10_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

impl ProfileReport {
    /// Serialize as telemetry events: one meta header, one line per
    /// nonzero phase, one line per mark.
    pub fn events(&self) -> Vec<TelemetryEvent> {
        let mut out = Vec::with_capacity(1 + self.phases.len() + self.marks.len());
        out.push(TelemetryEvent::ProfileMeta {
            version: self.version,
            substrate: self.substrate.clone(),
            wall_ns: self.wall_ns,
        });
        for p in &self.phases {
            out.push(TelemetryEvent::ProfilePhase {
                phase: p.phase,
                count: p.count,
                sampled: p.sampled,
                total_ns: p.total_ns,
                p50_ns: p.p50_ns,
                p99_ns: p.p99_ns,
                max_ns: p.max_ns,
            });
        }
        for &(mark, value) in &self.marks {
            out.push(TelemetryEvent::ProfileMark { mark, value });
        }
        out
    }

    /// Rebuild a report from a parsed event stream (the inverse of
    /// [`ProfileReport::events`]); `None` when no meta header is
    /// present. Later meta headers win so a file with several runs
    /// appended reports the last one — matching JSONL append semantics.
    pub fn from_events(events: &[TelemetryEvent]) -> Option<ProfileReport> {
        let mut report: Option<ProfileReport> = None;
        for event in events {
            match event {
                TelemetryEvent::ProfileMeta {
                    version,
                    substrate,
                    wall_ns,
                } => {
                    report = Some(ProfileReport {
                        version: *version,
                        substrate: substrate.clone(),
                        wall_ns: *wall_ns,
                        phases: Vec::new(),
                        marks: Vec::new(),
                    });
                }
                TelemetryEvent::ProfilePhase {
                    phase,
                    count,
                    sampled,
                    total_ns,
                    p50_ns,
                    p99_ns,
                    max_ns,
                } => {
                    if let Some(r) = &mut report {
                        r.phases.push(PhaseStat {
                            phase: *phase,
                            count: *count,
                            sampled: *sampled,
                            total_ns: *total_ns,
                            p50_ns: *p50_ns,
                            p99_ns: *p99_ns,
                            max_ns: *max_ns,
                        });
                    }
                }
                TelemetryEvent::ProfileMark { mark, value } => {
                    if let Some(r) = &mut report {
                        r.marks.push((*mark, *value));
                    }
                }
                _ => {}
            }
        }
        report
    }

    /// Look up a mark value.
    pub fn mark(&self, mark: ProfileMark) -> Option<u64> {
        self.marks.iter().find(|(m, _)| *m == mark).map(|&(_, v)| v)
    }

    /// Sum of phase totals that represent work (blocking phases — idle,
    /// pool wait, timer slop — excluded) plus idle for worker threads,
    /// used for the coverage audit. For coverage purposes a live worker
    /// is covered by `service + idle`; blocked-only phases overlap them.
    fn coverage_ns(&self) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.phase == ProfilePhase::WorkerIdle || !p.phase.is_blocking())
            .map(|p| p.total_ns)
            .sum()
    }

    /// Structural + coverage audit behind `sg-trace --profile`'s exit
    /// code. Errors (not warnings): zero wall time, a phase row with
    /// `sampled > count` or `sampled == 0 < count` on the live
    /// substrate, and live phase coverage below
    /// [`LIVE_COVERAGE_FLOOR`] of wall. The sim substrate is sampled by
    /// design, so its coverage is reported but not gated.
    pub fn audit(&self) -> Result<(), Vec<String>> {
        let mut errors = Vec::new();
        if self.wall_ns == 0 {
            errors.push("wall_ns is zero — the run never measured time".into());
        }
        for p in &self.phases {
            if p.sampled > p.count {
                errors.push(format!(
                    "phase {}: sampled {} exceeds count {}",
                    p.phase.name(),
                    p.sampled,
                    p.count
                ));
            }
            if self.substrate == "live" && p.count > 0 && p.sampled == 0 {
                errors.push(format!(
                    "phase {}: live phases are always timed but sampled == 0",
                    p.phase.name()
                ));
            }
        }
        if self.substrate == "live" && self.wall_ns > 0 {
            let cov = self.coverage_ns() as f64 / self.wall_ns as f64;
            if cov < LIVE_COVERAGE_FLOOR {
                errors.push(format!(
                    "live phase coverage {:.1}% of wall is below the {:.0}% floor",
                    cov * 100.0,
                    LIVE_COVERAGE_FLOOR * 100.0
                ));
            }
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }

    /// Folded flamegraph stacks (`stack total_ns` per nonzero phase),
    /// ready for `flamegraph.pl` / speedscope.
    pub fn folded_lines(&self) -> Vec<String> {
        self.phases
            .iter()
            .filter(|p| p.total_ns > 0)
            .map(|p| format!("{} {}", p.phase.stack(), p.total_ns))
            .collect()
    }

    /// Human-readable report: phase table (% of wall, count, p50/p99),
    /// watermark summary, and the explicit self-overhead line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(
            out,
            "sg-profile report — substrate {}, schema v{}, wall {}",
            self.substrate,
            self.version,
            fmt_ns(self.wall_ns)
        );
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "  {:<22} {:>7} {:>10} {:>9} {:>11} {:>10} {:>10} {:>10}",
            "phase", "% wall", "count", "sampled", "total", "p50", "p99", "max"
        );
        for p in &self.phases {
            let pct = if self.wall_ns > 0 {
                p.total_ns as f64 * 100.0 / self.wall_ns as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {:<22} {:>6.1}% {:>10} {:>9} {:>11} {:>10} {:>10} {:>10}",
                p.phase.name(),
                pct,
                p.count,
                p.sampled,
                fmt_ns(p.total_ns),
                fmt_ns(p.p50_ns),
                fmt_ns(p.p99_ns),
                fmt_ns(p.max_ns),
            );
        }
        let cov = if self.wall_ns > 0 {
            self.coverage_ns() as f64 * 100.0 / self.wall_ns as f64
        } else {
            0.0
        };
        let _ = writeln!(out, "  phase coverage: {cov:.1}% of wall");
        if !self.marks.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "  watermarks:");
            for &(mark, value) in &self.marks {
                if mark == ProfileMark::SelfOverheadNs {
                    continue;
                }
                let _ = writeln!(out, "    {:<28} {}", mark.name(), value);
            }
        }
        let overhead = self.mark(ProfileMark::SelfOverheadNs).unwrap_or(0);
        let pct = if self.wall_ns > 0 {
            overhead as f64 * 100.0 / self.wall_ns as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "  self-overhead: {} ({pct:.2}% of wall)",
            fmt_ns(overhead)
        );
        out
    }
}

/// Calibrate the cost of one timed section (two `Instant::now` calls),
/// for the self-overhead estimate.
fn timer_pair_ns() -> u64 {
    const N: u32 = 4096;
    let t0 = Instant::now();
    for _ in 0..N {
        std::hint::black_box(Instant::now());
    }
    let per_call = t0.elapsed().as_nanos() as u64 / N as u64;
    per_call * 2
}

/// Single-threaded sampled recorder for the simulator. See the module
/// docs for the sampling scheme; masks are per phase so rare classes
/// (controller ticks, faults) are always timed while per-packet classes
/// pay only a counter most of the time.
#[derive(Debug)]
pub struct SimProfiler {
    counts: [u64; N_PHASES],
    sampled: [u64; N_PHASES],
    sampled_ns: [u64; N_PHASES],
    max_ns: [u64; N_PHASES],
    mask: [u64; N_PHASES],
    hist: Vec<Hist>,
    marks: [u64; N_MARKS],
}

/// Default sampling period (as a power of two) for the high-frequency
/// dispatch classes. 1-in-128 keeps the enabled `sim_trial` overhead
/// within the 2% gate while still timing tens of thousands of events
/// per trial.
pub const SIM_SAMPLE_SHIFT: u32 = 7;

impl Default for SimProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl SimProfiler {
    /// A profiler with the default per-phase sampling masks.
    pub fn new() -> SimProfiler {
        let mut mask = [0u64; N_PHASES];
        for phase in [
            ProfilePhase::SimArrival,
            ProfilePhase::SimDeliverRequest,
            ProfilePhase::SimDeliverResponse,
            ProfilePhase::SimPhaseComplete,
        ] {
            mask[phase as usize] = (1u64 << SIM_SAMPLE_SHIFT) - 1;
        }
        SimProfiler {
            counts: [0; N_PHASES],
            sampled: [0; N_PHASES],
            sampled_ns: [0; N_PHASES],
            max_ns: [0; N_PHASES],
            mask,
            hist: vec![Hist::default(); N_PHASES],
            marks: [0; N_MARKS],
        }
    }

    /// Count one phase entry; returns a start stamp iff this entry is
    /// in the timed sample.
    #[inline]
    pub fn begin(&mut self, phase: ProfilePhase) -> Option<Instant> {
        let i = phase as usize;
        let c = self.counts[i];
        self.counts[i] = c + 1;
        if c & self.mask[i] == 0 {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Close a timed section opened by [`SimProfiler::begin`].
    #[inline]
    pub fn end(&mut self, phase: ProfilePhase, t0: Option<Instant>) {
        if let Some(t0) = t0 {
            let ns = t0.elapsed().as_nanos() as u64;
            let i = phase as usize;
            self.sampled[i] += 1;
            self.sampled_ns[i] += ns;
            if ns > self.max_ns[i] {
                self.max_ns[i] = ns;
            }
            self.hist[i].record(ns);
        }
    }

    /// Raise a watermark to at least `v`.
    #[inline]
    pub fn mark_max(&mut self, mark: ProfileMark, v: u64) {
        let m = &mut self.marks[mark as usize];
        if v > *m {
            *m = v;
        }
    }

    /// Add to a counter mark.
    #[inline]
    pub fn mark_add(&mut self, mark: ProfileMark, v: u64) {
        self.marks[mark as usize] += v;
    }

    /// Finalize into a report. Phase totals for sampled phases are the
    /// scaled estimate `sampled_ns × count / sampled`; the self-overhead
    /// mark is the calibrated timer-pair cost times the number of timed
    /// sections.
    pub fn report(&self, wall_ns: u64) -> ProfileReport {
        let total_sampled: u64 = self.sampled.iter().sum();
        let overhead = timer_pair_ns() * total_sampled;
        let mut phases = Vec::new();
        for phase in ProfilePhase::ALL {
            let i = phase as usize;
            if self.counts[i] == 0 {
                continue;
            }
            let total_ns = if self.sampled[i] > 0 {
                (self.sampled_ns[i] as u128 * self.counts[i] as u128 / self.sampled[i] as u128)
                    as u64
            } else {
                0
            };
            phases.push(PhaseStat {
                phase,
                count: self.counts[i],
                sampled: self.sampled[i],
                total_ns,
                p50_ns: self.hist[i].quantile(0.50),
                p99_ns: self.hist[i].quantile(0.99),
                max_ns: self.max_ns[i],
            });
        }
        let mut marks: Vec<(ProfileMark, u64)> = ProfileMark::ALL
            .into_iter()
            .filter(|&m| m != ProfileMark::SelfOverheadNs && self.marks[m as usize] > 0)
            .map(|m| (m, self.marks[m as usize]))
            .collect();
        marks.push((ProfileMark::SelfOverheadNs, overhead));
        ProfileReport {
            version: PROFILE_SCHEMA_VERSION,
            substrate: "sim".into(),
            wall_ns,
            phases,
            marks,
        }
    }
}

/// Thread-shared recorder for the live backend: relaxed atomics
/// throughout, every call timed (no sampling — live phase rates are
/// modest), snapshot-able mid-run for the Prometheus scrape.
#[derive(Debug)]
pub struct LiveProfiler {
    counts: [AtomicU64; N_PHASES],
    total_ns: [AtomicU64; N_PHASES],
    max_ns: [AtomicU64; N_PHASES],
    buckets: Vec<[AtomicU64; 64]>,
    marks: [AtomicU64; N_MARKS],
}

impl Default for LiveProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl LiveProfiler {
    /// A fresh all-zero profiler.
    pub fn new() -> LiveProfiler {
        LiveProfiler {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            max_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            buckets: (0..N_PHASES)
                .map(|_| std::array::from_fn(|_| AtomicU64::new(0)))
                .collect(),
            marks: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one completed phase execution of `ns` nanoseconds.
    #[inline]
    pub fn record(&self, phase: ProfilePhase, ns: u64) {
        let i = phase as usize;
        self.counts[i].fetch_add(1, Ordering::Relaxed);
        self.total_ns[i].fetch_add(ns, Ordering::Relaxed);
        self.max_ns[i].fetch_max(ns, Ordering::Relaxed);
        self.buckets[i][bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Time `f` and record it under `phase`.
    #[inline]
    pub fn time<R>(&self, phase: ProfilePhase, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let r = f();
        self.record(phase, t0.elapsed().as_nanos() as u64);
        r
    }

    /// Raise a watermark to at least `v`.
    #[inline]
    pub fn mark_max(&self, mark: ProfileMark, v: u64) {
        self.marks[mark as usize].fetch_max(v, Ordering::Relaxed);
    }

    /// Add to a counter mark.
    #[inline]
    pub fn mark_add(&self, mark: ProfileMark, v: u64) {
        self.marks[mark as usize].fetch_add(v, Ordering::Relaxed);
    }

    /// Point-in-time report (also served mid-run by the scrape).
    pub fn snapshot(&self, wall_ns: u64) -> ProfileReport {
        let total_timed: u64 = self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        let overhead = timer_pair_ns() * total_timed;
        let mut phases = Vec::new();
        for phase in ProfilePhase::ALL {
            let i = phase as usize;
            let count = self.counts[i].load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            let mut hist = Hist::default();
            for (b, slot) in hist.buckets.iter_mut().enumerate() {
                *slot = self.buckets[i][b].load(Ordering::Relaxed);
            }
            phases.push(PhaseStat {
                phase,
                count,
                sampled: count,
                total_ns: self.total_ns[i].load(Ordering::Relaxed),
                p50_ns: hist.quantile(0.50),
                p99_ns: hist.quantile(0.99),
                max_ns: self.max_ns[i].load(Ordering::Relaxed),
            });
        }
        let mut marks: Vec<(ProfileMark, u64)> = ProfileMark::ALL
            .into_iter()
            .filter(|&m| m != ProfileMark::SelfOverheadNs)
            .map(|m| (m, self.marks[m as usize].load(Ordering::Relaxed)))
            .filter(|&(_, v)| v > 0)
            .collect();
        marks.push((ProfileMark::SelfOverheadNs, overhead));
        ProfileReport {
            version: PROFILE_SCHEMA_VERSION,
            substrate: "live".into(),
            wall_ns,
            phases,
            marks,
        }
    }

    /// Append Prometheus exposition lines (`sg_profile_*`) for the live
    /// scrape endpoint.
    pub fn render_prometheus_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = writeln!(out, "# TYPE sg_profile_phase_count counter");
        for phase in ProfilePhase::ALL {
            let c = self.counts[phase as usize].load(Ordering::Relaxed);
            if c > 0 {
                let _ = writeln!(
                    out,
                    "sg_profile_phase_count{{phase=\"{}\"}} {c}",
                    phase.name()
                );
            }
        }
        let _ = writeln!(out, "# TYPE sg_profile_phase_total_ns counter");
        for phase in ProfilePhase::ALL {
            let t = self.total_ns[phase as usize].load(Ordering::Relaxed);
            if t > 0 {
                let _ = writeln!(
                    out,
                    "sg_profile_phase_total_ns{{phase=\"{}\"}} {t}",
                    phase.name()
                );
            }
        }
        let _ = writeln!(out, "# TYPE sg_profile_mark gauge");
        for mark in ProfileMark::ALL {
            let v = self.marks[mark as usize].load(Ordering::Relaxed);
            if v > 0 {
                let _ = writeln!(out, "sg_profile_mark{{mark=\"{}\"}} {v}", mark.name());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_buckets_and_quantiles() {
        let mut h = Hist::default();
        assert_eq!(h.quantile(0.5), 0);
        for _ in 0..99 {
            h.record(100); // bucket 7: [64, 128)
        }
        h.record(1_000_000); // bucket 20
        let p50 = h.quantile(0.50);
        assert!((64..128).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99);
        assert!((64..128).contains(&p99), "p99 {p99}");
        let p100 = h.quantile(1.0);
        assert!((524_288..1_048_576).contains(&p100), "p100 {p100}");
    }

    #[test]
    fn phase_and_mark_wire_names_round_trip() {
        for p in ProfilePhase::ALL {
            assert_eq!(ProfilePhase::from_wire(p.name()), Some(p));
        }
        for m in ProfileMark::ALL {
            assert_eq!(ProfileMark::from_wire(m.name()), Some(m));
        }
        assert_eq!(ProfilePhase::from_wire("nope"), None);
        assert_eq!(ProfileMark::from_wire("nope"), None);
    }

    #[test]
    fn sim_profiler_samples_and_scales() {
        let mut p = SimProfiler::new();
        // 256 deliver-request entries at 1-in-128 sampling: 2 timed.
        for _ in 0..256 {
            let t0 = p.begin(ProfilePhase::SimDeliverRequest);
            p.end(ProfilePhase::SimDeliverRequest, t0);
        }
        // An unsampled phase times every entry.
        for _ in 0..3 {
            let t0 = p.begin(ProfilePhase::SimControllerTick);
            assert!(t0.is_some());
            p.end(ProfilePhase::SimControllerTick, t0);
        }
        p.mark_max(ProfileMark::HeapDepthHighWater, 41);
        p.mark_max(ProfileMark::HeapDepthHighWater, 17); // no-op, lower
        let r = p.report(1_000_000);
        let dr = r
            .phases
            .iter()
            .find(|s| s.phase == ProfilePhase::SimDeliverRequest)
            .unwrap();
        assert_eq!(dr.count, 256);
        assert_eq!(dr.sampled, 2);
        let tick = r
            .phases
            .iter()
            .find(|s| s.phase == ProfilePhase::SimControllerTick)
            .unwrap();
        assert_eq!((tick.count, tick.sampled), (3, 3));
        assert_eq!(r.mark(ProfileMark::HeapDepthHighWater), Some(41));
        assert!(r.mark(ProfileMark::SelfOverheadNs).is_some());
        assert_eq!(r.substrate, "sim");
        // Sim reports are not coverage-gated.
        r.audit().unwrap();
    }

    #[test]
    fn live_profiler_snapshot_and_audit() {
        let p = LiveProfiler::new();
        p.record(ProfilePhase::WorkerService, 600);
        p.record(ProfilePhase::WorkerIdle, 350);
        p.record(ProfilePhase::PoolWait, 10_000); // blocking: not coverage
        p.mark_max(ProfileMark::RingOccupancyHighWater, 7);
        let r = p.snapshot(1_000);
        assert_eq!(r.substrate, "live");
        // service 600 + idle 350 = 95% of wall 1000: passes the floor.
        r.audit().unwrap();
        let starved = p.snapshot(100_000);
        assert!(starved.audit().is_err(), "1% coverage must fail");
        let ws = r
            .phases
            .iter()
            .find(|s| s.phase == ProfilePhase::WorkerService)
            .unwrap();
        assert_eq!((ws.count, ws.sampled, ws.total_ns), (1, 1, 600));
        assert_eq!(r.mark(ProfileMark::RingOccupancyHighWater), Some(7));
    }

    #[test]
    fn report_event_round_trip() {
        let p = LiveProfiler::new();
        p.record(ProfilePhase::FrHook, 120);
        p.record(ProfilePhase::WorkerService, 4_000);
        p.mark_add(ProfileMark::RingDropped, 3);
        let r = p.snapshot(5_000);
        let events = r.events();
        let back = ProfileReport::from_events(&events).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn folded_lines_and_render() {
        let p = LiveProfiler::new();
        p.record(ProfilePhase::FrHook, 500);
        let r = p.snapshot(1_000);
        let folded = r.folded_lines();
        assert_eq!(folded, vec!["live;delay_line;fr_hook 500".to_string()]);
        let text = r.render();
        assert!(text.contains("fr_hook"), "{text}");
        assert!(text.contains("self-overhead"), "{text}");
        assert!(text.contains("substrate live"), "{text}");
    }

    #[test]
    fn zero_wall_fails_audit() {
        let r = LiveProfiler::new().snapshot(0);
        assert!(r.audit().is_err());
    }

    #[test]
    fn schema_v2_reports_wheel_marks_only_when_set() {
        assert_eq!(PROFILE_SCHEMA_VERSION, 2);
        assert_eq!(PROFILE_SCHEMA, "sg-profile/v2");
        // Heap-backend run: no wheel marks recorded, none reported.
        let p = SimProfiler::new();
        let r = p.report(1_000);
        assert_eq!(r.version, 2);
        assert!(ProfileMark::WHEEL_LEVELS
            .iter()
            .all(|&m| r.mark(m).is_none()));
        assert!(r.mark(ProfileMark::WheelOverflowHighWater).is_none());
        // Wheel-backend run: per-level occupancy comes through.
        let mut p = SimProfiler::new();
        for (lvl, &mark) in ProfileMark::WHEEL_LEVELS.iter().enumerate() {
            p.mark_max(mark, (lvl as u64 + 1) * 10);
        }
        p.mark_max(ProfileMark::WheelOverflowHighWater, 3);
        let r = p.report(1_000);
        assert_eq!(r.mark(ProfileMark::WheelL0HighWater), Some(10));
        assert_eq!(r.mark(ProfileMark::WheelL5HighWater), Some(60));
        assert_eq!(r.mark(ProfileMark::WheelOverflowHighWater), Some(3));
        // And they survive the event round trip (wire names parse).
        let back = ProfileReport::from_events(&r.events()).unwrap();
        assert_eq!(back, r);
    }
}
