//! SLO error-budget accounting and multi-window burn-rate alerts.
//!
//! Follows the SRE-workbook multi-burn-rate pattern: an SLO objective
//! (e.g. 99.9% of requests within the QoS deadline) defines an error
//! budget of `1 - objective`; the *burn rate* over a window is the
//! window's bad-request fraction divided by that budget (burn 1.0 =
//! spending the budget exactly at the sustainable rate). Two rules fire
//! alerts: a **fast** burn over a short window (paging-grade: the
//! budget is being torched *now*) and a **slow** burn over a long
//! window (ticket-grade: a sustained leak). Default thresholds are the
//! workbook's 14.4× / 6× pair.
//!
//! [`SloTracker`] keeps good/bad counts in coarse time buckets
//! (`BTreeMap<bucket, (total, bad)>`) plus cumulative totals, which
//! makes it a commutative monoid under [`SloTracker::merge`] like the
//! digests in [`crate::agg`] — per-node trackers merge into the exact
//! cluster tracker in any order. Burn rates are then computed on the
//! merged state, never merged themselves (rates do not average
//! soundly; counts do).

use sg_core::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// SLO objective and burn-alert windows.
#[derive(Debug, Clone, PartialEq)]
pub struct SloConfig {
    /// Target good-request fraction in `(0,1)`, e.g. `0.999`. The error
    /// budget is `1 - objective`.
    pub objective: f64,
    /// Short alert window (paging-grade burn).
    pub fast_window: SimDuration,
    /// Long alert window (ticket-grade burn).
    pub slow_window: SimDuration,
    /// Fast-burn alert threshold (× the sustainable rate).
    pub fast_burn: f64,
    /// Slow-burn alert threshold (× the sustainable rate).
    pub slow_burn: f64,
    /// Time-bucket granularity for windowed counts.
    pub bucket: SimDuration,
}

impl Default for SloConfig {
    /// 99.9% objective, 5 s / 60 s windows at 14.4× / 6× thresholds,
    /// 250 ms buckets. The windows are compressed from the workbook's
    /// 5 m / 1 h to fit the seconds-scale runs this repo drives.
    fn default() -> Self {
        SloConfig {
            objective: 0.999,
            fast_window: SimDuration::from_secs(5),
            slow_window: SimDuration::from_secs(60),
            fast_burn: 14.4,
            slow_burn: 6.0,
            bucket: SimDuration::from_millis(250),
        }
    }
}

impl SloConfig {
    /// Objective with `nines`-style percentage (e.g. `99.9`).
    pub fn with_objective_pct(mut self, pct: f64) -> Self {
        assert!(
            pct > 0.0 && pct < 100.0,
            "objective percent must be in (0,100)"
        );
        self.objective = pct / 100.0;
        self
    }

    /// Error budget: allowed bad fraction.
    pub fn budget(&self) -> f64 {
        1.0 - self.objective
    }
}

/// Multi-window burn verdict at one instant.
#[derive(Debug, Clone, PartialEq)]
pub struct BurnVerdict {
    /// Burn rate over the fast window (`None`: no traffic in window).
    pub fast: Option<f64>,
    /// Burn rate over the slow window (`None`: no traffic in window).
    pub slow: Option<f64>,
    /// Fast rule firing (`fast >= fast_burn`).
    pub fast_alert: bool,
    /// Slow rule firing (`slow >= slow_burn`).
    pub slow_alert: bool,
    /// Fraction of the whole-run error budget left (can go negative;
    /// 1.0 when no traffic has been observed).
    pub budget_remaining: f64,
}

impl BurnVerdict {
    /// True when either rule is firing.
    pub fn alerting(&self) -> bool {
        self.fast_alert || self.slow_alert
    }
}

/// Windowed good/bad request counts with exact merge.
#[derive(Debug, Clone, PartialEq)]
pub struct SloTracker {
    cfg: SloConfig,
    /// bucket index (`at / cfg.bucket`) → (total, bad).
    buckets: BTreeMap<u64, (u64, u64)>,
    total: u64,
    bad: u64,
    /// Latest event timestamp seen (ns); the default "now" for verdicts.
    last_ns: u64,
}

impl SloTracker {
    /// Empty tracker.
    pub fn new(cfg: SloConfig) -> Self {
        assert!(
            cfg.objective > 0.0 && cfg.objective < 1.0,
            "objective must be in (0,1)"
        );
        assert!(!cfg.bucket.is_zero(), "bucket granularity must be nonzero");
        SloTracker {
            cfg,
            buckets: BTreeMap::new(),
            total: 0,
            bad: 0,
            last_ns: 0,
        }
    }

    /// The configuration this tracker was built with.
    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }

    /// Record one request finishing at `at`.
    #[inline]
    pub fn record(&mut self, at: SimTime, bad: bool) {
        self.record_counts(at, 1, u64::from(bad));
    }

    /// Record a batch: `total` requests, `bad` of them violating, all
    /// attributed to `at`'s bucket (used when replaying cumulative
    /// `slo` events as deltas in `sg-watch`).
    pub fn record_counts(&mut self, at: SimTime, total: u64, bad: u64) {
        debug_assert!(bad <= total);
        let idx = at.as_nanos() / self.cfg.bucket.as_nanos();
        let b = self.buckets.entry(idx).or_insert((0, 0));
        b.0 += total;
        b.1 += bad;
        self.total += total;
        self.bad += bad;
        self.last_ns = self.last_ns.max(at.as_nanos());
    }

    /// Cumulative requests observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Cumulative violations observed.
    pub fn bad(&self) -> u64 {
        self.bad
    }

    /// Latest event timestamp observed.
    pub fn last_at(&self) -> SimTime {
        SimTime::from_nanos(self.last_ns)
    }

    /// Merge another tracker (same config required): pointwise bucket
    /// sum — exact, associative, commutative.
    pub fn merge(&mut self, other: &SloTracker) {
        assert_eq!(self.cfg, other.cfg, "SLO config mismatch");
        for (&idx, &(t, b)) in &other.buckets {
            let e = self.buckets.entry(idx).or_insert((0, 0));
            e.0 += t;
            e.1 += b;
        }
        self.total += other.total;
        self.bad += other.bad;
        self.last_ns = self.last_ns.max(other.last_ns);
    }

    /// Drop buckets that ended more than `retain` before the latest
    /// observation. Bounds memory when tailing an unbounded stream;
    /// cumulative totals are unaffected, but pruned trackers merge
    /// exactly only over their retained range — cluster merges should
    /// happen before pruning (documented in DESIGN.md §11).
    pub fn prune(&mut self, retain: SimDuration) {
        let cutoff = self.last_ns.saturating_sub(retain.as_nanos()) / self.cfg.bucket.as_nanos();
        self.buckets.retain(|&idx, _| idx >= cutoff);
    }

    /// `(total, bad)` over the window ending at `now` (bucket
    /// granularity; buckets overlapping the window count whole).
    fn window_counts(&self, window: SimDuration, now: SimTime) -> (u64, u64) {
        let bucket_ns = self.cfg.bucket.as_nanos();
        let start = now.as_nanos().saturating_sub(window.as_nanos()) / bucket_ns;
        let end = now.as_nanos() / bucket_ns;
        let mut total = 0u64;
        let mut bad = 0u64;
        for (_, &(t, b)) in self.buckets.range(start..=end) {
            total += t;
            bad += b;
        }
        (total, bad)
    }

    /// Burn rate over `window` ending at `now`: the window's bad
    /// fraction divided by the error budget. `None` when the window saw
    /// no traffic.
    pub fn burn_rate(&self, window: SimDuration, now: SimTime) -> Option<f64> {
        let (total, bad) = self.window_counts(window, now);
        (total > 0).then(|| (bad as f64 / total as f64) / self.cfg.budget())
    }

    /// Fraction of the cumulative error budget remaining.
    pub fn budget_remaining(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        1.0 - (self.bad as f64 / self.total as f64) / self.cfg.budget()
    }

    /// Evaluate both burn rules at `now`.
    pub fn verdict(&self, now: SimTime) -> BurnVerdict {
        let fast = self.burn_rate(self.cfg.fast_window, now);
        let slow = self.burn_rate(self.cfg.slow_window, now);
        BurnVerdict {
            fast,
            slow,
            fast_alert: fast.is_some_and(|b| b >= self.cfg.fast_burn),
            slow_alert: slow.is_some_and(|b| b >= self.cfg.slow_burn),
            budget_remaining: self.budget_remaining(),
        }
    }

    /// Evaluate both burn rules at the latest observed timestamp.
    pub fn verdict_at_last(&self) -> BurnVerdict {
        self.verdict(self.last_at())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn clean_traffic_burns_nothing() {
        let mut t = SloTracker::new(SloConfig::default());
        for i in 0..1000 {
            t.record(ms(i), false);
        }
        let v = t.verdict_at_last();
        assert_eq!(v.fast, Some(0.0));
        assert!(!v.alerting());
        assert_eq!(v.budget_remaining, 1.0);
    }

    #[test]
    fn heavy_violation_fires_fast_burn() {
        let mut t = SloTracker::new(SloConfig::default());
        // 50% bad at a 0.1% budget → burn 500× ≫ 14.4.
        for i in 0..1000 {
            t.record(ms(i), i % 2 == 0);
        }
        let v = t.verdict_at_last();
        assert!(v.fast_alert && v.slow_alert);
        assert!(v.budget_remaining < 0.0);
    }

    #[test]
    fn fast_window_recovers_when_violations_stop() {
        let cfg = SloConfig::default();
        let mut t = SloTracker::new(cfg.clone());
        // A bad burst early, then a long clean tail well past the fast
        // window: fast burn clears, cumulative budget stays spent.
        for i in 0..100 {
            t.record(ms(i), true);
        }
        for i in 0..10_000 {
            t.record(ms(10_000 + i), false);
        }
        let v = t.verdict_at_last();
        assert_eq!(v.fast, Some(0.0));
        assert!(!v.fast_alert);
        assert!(v.budget_remaining < 1.0);
    }

    #[test]
    fn merge_is_exact_and_order_independent() {
        let cfg = SloConfig::default();
        let mut whole = SloTracker::new(cfg.clone());
        let mut a = SloTracker::new(cfg.clone());
        let mut b = SloTracker::new(cfg.clone());
        for i in 0..5_000u64 {
            let bad = i % 17 == 0;
            whole.record(ms(i), bad);
            if i % 2 == 0 {
                a.record(ms(i), bad);
            } else {
                b.record(ms(i), bad);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab, whole);
        assert_eq!(ab.verdict_at_last(), whole.verdict_at_last());
    }

    #[test]
    fn prune_keeps_windows_and_totals() {
        let mut t = SloTracker::new(SloConfig::default());
        for i in 0..100_000u64 {
            t.record(ms(i), i % 100 == 0);
        }
        let before = t.verdict_at_last();
        t.prune(SimDuration::from_secs(61));
        let after = t.verdict_at_last();
        assert_eq!(before, after);
        assert_eq!(t.total(), 100_000);
        assert!(t.buckets.len() <= 61_000 / 250 + 2);
    }

    #[test]
    fn empty_windows_yield_none() {
        let t = SloTracker::new(SloConfig::default());
        assert_eq!(t.burn_rate(SimDuration::from_secs(5), ms(0)), None);
        let v = t.verdict_at_last();
        assert!(!v.alerting());
        assert_eq!(v.budget_remaining, 1.0);
    }
}
