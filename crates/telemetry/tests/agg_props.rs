//! Merge-algebra properties for the cluster aggregation layer
//! (`sg_telemetry::agg` / `sg_telemetry::slo`).
//!
//! The whole observability design rests on one claim: per-node shards
//! form a commutative monoid under `merge`, so ANY partition of the
//! completion stream, merged in ANY order, yields the SAME cluster
//! view — down to the serialized bytes. These properties pin that claim
//! for all three structures (latency digest, heavy-hitter sketch, SLO
//! window counters).

use proptest::prelude::*;
use sg_core::ids::NodeId;
use sg_core::time::{SimDuration, SimTime};
use sg_telemetry::{LatencyDigest, SloConfig, SloTracker, TelemetryEvent, TopK, TopKEntry};

/// Canonical byte form of a digest: its snapshot event's JSON line
/// (fixed stamp/node so only the digest state varies).
fn digest_bytes(digest: &LatencyDigest) -> String {
    TelemetryEvent::Digest {
        at: SimTime::ZERO,
        node: NodeId(0),
        digest: digest.clone(),
    }
    .to_json_line()
}

/// Canonical byte form of a sketch: its snapshot event's JSON line.
fn topk_bytes(topk: &TopK) -> String {
    TelemetryEvent::TopK {
        at: SimTime::ZERO,
        node: NodeId(0),
        capacity: topk.capacity() as u32,
        entries: topk.entries().collect(),
    }
    .to_json_line()
}

fn digest_of(values: &[u64]) -> LatencyDigest {
    let mut d = LatencyDigest::with_default_resolution();
    for &v in values {
        d.record(SimDuration::from_nanos(v));
    }
    d
}

fn topk_of(capacity: usize, stream: &[(u64, u64)]) -> TopK {
    let mut t = TopK::new(capacity);
    for &(key, weight) in stream {
        t.observe(key, weight);
    }
    t
}

fn slo_of(counts: &[(u64, u64)]) -> SloTracker {
    let mut t = SloTracker::new(SloConfig::default());
    for (i, &(total, bad)) in counts.iter().enumerate() {
        let at = SimTime::from_nanos((i as u64 + 1) * 40_000_000);
        t.record_counts(at, total.max(bad), bad);
    }
    t
}

/// Deterministic Fisher–Yates driven by a seed (the shim has no
/// shuffle strategy; plain code keeps the permutation reproducible).
fn permuted<T: Clone>(items: &[T], mut seed: u64) -> Vec<T> {
    let mut out: Vec<T> = items.to_vec();
    for i in (1..out.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        out.swap(i, j);
    }
    out
}

proptest! {
    // Digest merge is commutative and associative, and the empty digest
    // is its identity — checked structurally AND on the encoded bytes.
    #[test]
    fn digest_merge_is_a_commutative_monoid(
        a in prop::collection::vec(1u64..5_000_000_000u64, 0..120),
        b in prop::collection::vec(1u64..5_000_000_000u64, 0..120),
        c in prop::collection::vec(1u64..5_000_000_000u64, 0..120),
    ) {
        let (da, db, dc) = (digest_of(&a), digest_of(&b), digest_of(&c));

        let mut ab = da.clone();
        ab.merge(&db);
        let mut ba = db.clone();
        ba.merge(&da);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(digest_bytes(&ab), digest_bytes(&ba));

        let mut ab_c = ab.clone();
        ab_c.merge(&dc);
        let mut bc = db.clone();
        bc.merge(&dc);
        let mut a_bc = da.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);
        prop_assert_eq!(digest_bytes(&ab_c), digest_bytes(&a_bc));

        let mut with_empty = da.clone();
        with_empty.merge(&LatencyDigest::with_default_resolution());
        prop_assert_eq!(&with_empty, &da);
    }

    // Sharding invariance: recording a stream into N node shards and
    // merging them — in ANY order — is byte-identical to recording the
    // whole stream into one digest.
    #[test]
    fn digest_shard_merge_is_order_invariant(
        values in prop::collection::vec(1u64..5_000_000_000u64, 1..300),
        shards in 2usize..8,
        seed in 0u64..1_000_000,
    ) {
        let mut parts: Vec<Vec<u64>> = vec![Vec::new(); shards];
        for (i, &v) in values.iter().enumerate() {
            parts[i % shards].push(v);
        }
        let shard_digests: Vec<LatencyDigest> =
            parts.iter().map(|p| digest_of(p)).collect();

        let whole = digest_of(&values);
        let mut in_order = LatencyDigest::with_default_resolution();
        for d in &shard_digests {
            in_order.merge(d);
        }
        let mut reordered = LatencyDigest::with_default_resolution();
        for d in permuted(&shard_digests, seed) {
            reordered.merge(&d);
        }
        prop_assert_eq!(&in_order, &whole);
        prop_assert_eq!(digest_bytes(&reordered), digest_bytes(&whole));
    }

    // Sketch merge (pointwise sum, no truncation) is commutative and
    // associative with the empty sketch as identity; truncation to the
    // reported top-k happens only at query time, so merged bytes are
    // order-independent even when every shard is over capacity.
    #[test]
    fn topk_merge_is_a_commutative_monoid(
        a in prop::collection::vec((0u64..40, 1u64..1_000), 0..80),
        b in prop::collection::vec((0u64..40, 1u64..1_000), 0..80),
        c in prop::collection::vec((0u64..40, 1u64..1_000), 0..80),
        capacity in 2usize..10,
    ) {
        let (ta, tb, tc) = (
            topk_of(capacity, &a),
            topk_of(capacity, &b),
            topk_of(capacity, &c),
        );

        let mut ab = ta.clone();
        ab.merge(&tb);
        let mut ba = tb.clone();
        ba.merge(&ta);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(topk_bytes(&ab), topk_bytes(&ba));

        let mut ab_c = ab.clone();
        ab_c.merge(&tc);
        let mut bc = tb.clone();
        bc.merge(&tc);
        let mut a_bc = ta.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);
        prop_assert_eq!(topk_bytes(&ab_c), topk_bytes(&a_bc));

        let mut with_empty = ta.clone();
        with_empty.merge(&TopK::new(capacity));
        prop_assert_eq!(&with_empty, &ta);
    }

    // SpaceSaving accuracy across the merge: eviction conserves total
    // weight (the victim's count is inherited), so the merged sketch
    // carries EXACTLY the total observed weight; and the per-key lower
    // bound `weight - err <= true weight` survives pointwise summation.
    // (The per-shard upper bound `true <= weight` does NOT survive a
    // merge — a key evicted in one shard undercounts there — which is
    // precisely why `err` is part of the wire format.)
    #[test]
    fn topk_merged_estimates_bound_true_weights(
        a in prop::collection::vec((0u64..24, 1u64..1_000), 1..80),
        b in prop::collection::vec((0u64..24, 1u64..1_000), 1..80),
        capacity in 4usize..10,
    ) {
        let mut merged = topk_of(capacity, &a);
        merged.merge(&topk_of(capacity, &b));

        let mut truth = std::collections::BTreeMap::new();
        for &(k, w) in a.iter().chain(b.iter()) {
            *truth.entry(k).or_insert(0u64) += w;
        }
        let total_true: u64 = truth.values().sum();
        let total_est: u64 = merged.entries().map(|e| e.weight).sum();
        prop_assert_eq!(total_est, total_true, "eviction must conserve total weight");

        for TopKEntry { key, weight, err } in merged.entries() {
            let true_w = truth.get(&key).copied().unwrap_or(0);
            prop_assert!(
                weight.saturating_sub(err) <= true_w,
                "key {key}: lower bound {} (weight {weight}, err {err}) exceeds true {true_w}",
                weight.saturating_sub(err)
            );
        }

        // A key untracked in either shard: its per-shard true weight is
        // bounded by that shard's min tracked weight, so any key whose
        // true weight exceeds BOTH shard minima must appear merged.
        let shard_min = |s: &TopK| s.entries().map(|e| e.weight).min().unwrap_or(0);
        let bound = shard_min(&topk_of(capacity, &a)) + shard_min(&topk_of(capacity, &b));
        let tracked: std::collections::BTreeSet<u64> =
            merged.entries().map(|e| e.key).collect();
        for (&k, &true_w) in &truth {
            if true_w > bound {
                prop_assert!(
                    tracked.contains(&k),
                    "heavy key {k} (true {true_w} > bound {bound}) missing from merge"
                );
            }
        }
    }

    // SLO window counters: sharding the (total, bad) stream across
    // nodes and merging — in any order — equals recording the whole
    // stream into one tracker, including every burn verdict.
    #[test]
    fn slo_shard_merge_is_order_invariant(
        counts in prop::collection::vec((0u64..50, 0u64..50), 1..120),
        shards in 2usize..6,
        seed in 0u64..1_000_000,
    ) {
        let mut parts: Vec<Vec<(u64, u64)>> = vec![Vec::new(); shards];
        let mut whole = SloTracker::new(SloConfig::default());
        for (i, &(total, bad)) in counts.iter().enumerate() {
            let at = SimTime::from_nanos((i as u64 + 1) * 40_000_000);
            whole.record_counts(at, total.max(bad), bad);
            parts[i % shards].push((total.max(bad), bad));
        }
        // Re-record each shard's slice at the same stamps it had in the
        // whole stream: bucketed counts must land in the same windows.
        let shard_trackers: Vec<SloTracker> = parts
            .iter()
            .enumerate()
            .map(|(s, part)| {
                let mut t = SloTracker::new(SloConfig::default());
                for (j, &(total, bad)) in part.iter().enumerate() {
                    let i = j * shards + s; // inverse of the round-robin split
                    let at = SimTime::from_nanos((i as u64 + 1) * 40_000_000);
                    t.record_counts(at, total, bad);
                }
                t
            })
            .collect();

        let mut merged = SloTracker::new(SloConfig::default());
        for t in permuted(&shard_trackers, seed) {
            merged.merge(&t);
        }
        prop_assert_eq!(&merged, &whole);
        prop_assert_eq!(merged.verdict_at_last(), whole.verdict_at_last());
        for probe_ms in [0u64, 1_000, 4_800] {
            let now = SimTime::from_nanos(probe_ms * 1_000_000);
            prop_assert_eq!(merged.verdict(now), whole.verdict(now));
        }
    }

    // Identity + commutativity for the SLO tracker itself.
    #[test]
    fn slo_merge_is_commutative_with_identity(
        a in prop::collection::vec((0u64..50, 0u64..50), 0..60),
        b in prop::collection::vec((0u64..50, 0u64..50), 0..60),
    ) {
        let (ta, tb) = (slo_of(&a), slo_of(&b));
        let mut ab = ta.clone();
        ab.merge(&tb);
        let mut ba = tb.clone();
        ba.merge(&ta);
        prop_assert_eq!(&ab, &ba);

        let mut with_empty = ta.clone();
        with_empty.merge(&SloTracker::new(SloConfig::default()));
        prop_assert_eq!(&with_empty, &ta);
    }
}
