//! # surgeguard — fast and efficient scaling for microservices
//!
//! A from-scratch Rust reproduction of *Fast and Efficient Scaling for
//! Microservices with SurgeGuard* (SC 2024): a decentralized, per-node
//! vertical-scaling controller that guards application QoS during request
//! surges with two complementary paths —
//!
//! * **FirstResponder**: per-packet slack tracking at the network receive
//!   hook, boosting core frequency within microseconds of a violation;
//! * **Escalator**: a slower decision cycle that splits container latency
//!   into true execution time (`execMetric`) and hidden threadpool
//!   queueing (`queueBuildup`), propagates upscale hints downstream inside
//!   RPC metadata, and allocates cores using an online-profiled
//!   sensitivity matrix.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`core`] | the controller algorithms (simulator-independent) |
//! | [`sim`] | deterministic discrete-event cluster substrate |
//! | [`live`] | wall-clock live-execution substrate (real threads) |
//! | [`workloads`] | DeathStarBench-like task graphs + calibration |
//! | [`loadgen`] | wrk2-style spiking open-loop load generation |
//! | [`controllers`] | SurgeGuard, Parties, CaladanAlgo, oracle |
//! | [`experiments`] | per-figure reproduction harness |
//! | [`telemetry`] | structured decision-trace events, sinks, `sg-trace` |
//!
//! ## Quickstart
//!
//! ```
//! use surgeguard::controllers::SurgeGuardFactory;
//! use surgeguard::loadgen::{RunReport, SpikePattern};
//! use surgeguard::sim::runner::Simulation;
//! use surgeguard::workloads::{prepare, CalibrationOptions, Workload};
//! use surgeguard::core::time::{SimDuration, SimTime};
//!
//! // Calibrate the CHAIN microbenchmark for one node (34-core initial
//! // allocation, base rate below the knee, profiled QoS parameters).
//! let pw = prepare(Workload::Chain, 1, CalibrationOptions::default());
//!
//! // 1.75x surges of 2s every 10s, as in the paper's §VI-B protocol.
//! let pattern = SpikePattern::periodic(pw.base_rate, 1.75, SimDuration::from_secs(2));
//!
//! let mut cfg = pw.cfg.clone();
//! cfg.end = SimTime::from_secs(12);
//! cfg.measure_start = SimTime::from_secs(2);
//! let arrivals = pattern.arrivals(SimTime::ZERO, SimTime::from_secs(12));
//!
//! let result = Simulation::new(cfg, &SurgeGuardFactory::full(), arrivals).run();
//! let report = RunReport::from_points(
//!     &result.points, pw.qos,
//!     SimTime::from_secs(2), SimTime::from_secs(12),
//!     result.avg_cores, result.energy_j,
//! );
//! assert!(report.requests > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use sg_controllers as controllers;
pub use sg_core as core;
pub use sg_experiments as experiments;
pub use sg_live as live;
pub use sg_loadgen as loadgen;
pub use sg_sim as sim;
pub use sg_telemetry as telemetry;
pub use sg_workloads as workloads;
