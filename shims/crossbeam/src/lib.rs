//! Offline stand-in for `crossbeam`: the one type this workspace uses,
//! `queue::ArrayQueue` — a lock-free bounded MPMC queue implemented as a
//! Vyukov sequence-stamped ring buffer (the same algorithm the real crate
//! uses). Push fails instead of blocking when the ring is full, which is
//! exactly the drop-not-block property the FirstResponder hot path needs.

/// Lock-free bounded queues.
pub mod queue {
    use std::cell::UnsafeCell;
    use std::mem::MaybeUninit;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Slot<T> {
        /// Vyukov stamp: `index` when empty and writable at `index`,
        /// `index + 1` when holding the value pushed at `index`,
        /// `index + capacity` once popped (writable one lap later).
        stamp: AtomicUsize,
        value: UnsafeCell<MaybeUninit<T>>,
    }

    /// Bounded multi-producer multi-consumer lock-free queue.
    pub struct ArrayQueue<T> {
        head: AtomicUsize,
        tail: AtomicUsize,
        buffer: Box<[Slot<T>]>,
    }

    unsafe impl<T: Send> Send for ArrayQueue<T> {}
    unsafe impl<T: Send> Sync for ArrayQueue<T> {}

    impl<T> ArrayQueue<T> {
        /// A queue holding at most `cap` elements.
        ///
        /// # Panics
        /// If `cap` is zero.
        pub fn new(cap: usize) -> Self {
            assert!(cap > 0, "capacity must be non-zero");
            let buffer: Box<[Slot<T>]> = (0..cap)
                .map(|i| Slot {
                    stamp: AtomicUsize::new(i),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect();
            ArrayQueue {
                head: AtomicUsize::new(0),
                tail: AtomicUsize::new(0),
                buffer,
            }
        }

        /// Maximum number of elements.
        pub fn capacity(&self) -> usize {
            self.buffer.len()
        }

        /// Attempt to push; returns `Err(value)` when full.
        pub fn push(&self, value: T) -> Result<(), T> {
            let cap = self.buffer.len();
            let mut tail = self.tail.load(Ordering::Relaxed);
            loop {
                let slot = &self.buffer[tail % cap];
                let stamp = slot.stamp.load(Ordering::Acquire);
                if stamp == tail {
                    match self.tail.compare_exchange_weak(
                        tail,
                        tail.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            unsafe { (*slot.value.get()).write(value) };
                            slot.stamp.store(tail.wrapping_add(1), Ordering::Release);
                            return Ok(());
                        }
                        Err(t) => tail = t,
                    }
                } else if stamp.wrapping_sub(tail) as isize > 0 {
                    // Another producer advanced past us; reload.
                    tail = self.tail.load(Ordering::Relaxed);
                } else {
                    // One full lap behind: the ring is full — unless a
                    // concurrent pop just freed the slot; re-check once.
                    let head = self.head.load(Ordering::Relaxed);
                    if tail.wrapping_sub(head) >= cap {
                        return Err(value);
                    }
                    std::hint::spin_loop();
                    tail = self.tail.load(Ordering::Relaxed);
                }
            }
        }

        /// Attempt to pop; `None` when empty.
        pub fn pop(&self) -> Option<T> {
            let cap = self.buffer.len();
            let mut head = self.head.load(Ordering::Relaxed);
            loop {
                let slot = &self.buffer[head % cap];
                let stamp = slot.stamp.load(Ordering::Acquire);
                if stamp == head.wrapping_add(1) {
                    match self.head.compare_exchange_weak(
                        head,
                        head.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            let value = unsafe { (*slot.value.get()).assume_init_read() };
                            slot.stamp.store(head.wrapping_add(cap), Ordering::Release);
                            return Some(value);
                        }
                        Err(h) => head = h,
                    }
                } else if (stamp.wrapping_sub(head.wrapping_add(1)) as isize) < 0 {
                    // Slot not yet written at this lap: empty — unless a
                    // concurrent push is mid-flight; one re-check.
                    let tail = self.tail.load(Ordering::Relaxed);
                    if tail == head {
                        return None;
                    }
                    std::hint::spin_loop();
                    head = self.head.load(Ordering::Relaxed);
                } else {
                    head = self.head.load(Ordering::Relaxed);
                }
            }
        }

        /// Snapshot of the element count (racy, as in the real crate).
        pub fn len(&self) -> usize {
            let tail = self.tail.load(Ordering::SeqCst);
            let head = self.head.load(Ordering::SeqCst);
            tail.wrapping_sub(head).min(self.buffer.len())
        }

        /// Whether the queue appears empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Whether the queue appears full.
        pub fn is_full(&self) -> bool {
            self.len() == self.buffer.len()
        }
    }

    impl<T> Drop for ArrayQueue<T> {
        fn drop(&mut self) {
            while self.pop().is_some() {}
        }
    }

    #[cfg(test)]
    mod tests {
        use super::ArrayQueue;
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        #[test]
        fn fifo_single_thread() {
            let q = ArrayQueue::new(4);
            assert!(q.pop().is_none());
            for i in 0..4 {
                q.push(i).unwrap();
            }
            assert!(q.push(99).is_err(), "full queue must reject");
            for i in 0..4 {
                assert_eq!(q.pop(), Some(i));
            }
            assert!(q.pop().is_none());
        }

        #[test]
        fn wraps_many_laps() {
            let q = ArrayQueue::new(3);
            for i in 0..1000 {
                q.push(i).unwrap();
                assert_eq!(q.pop(), Some(i));
            }
        }

        #[test]
        fn mpmc_conserves_sum() {
            let q = Arc::new(ArrayQueue::new(64));
            let sum = Arc::new(AtomicU64::new(0));
            const PER: u64 = 5000;
            let producers: Vec<_> = (0..2)
                .map(|p| {
                    let q = q.clone();
                    std::thread::spawn(move || {
                        for i in 0..PER {
                            let mut v = p * PER + i + 1;
                            loop {
                                match q.push(v) {
                                    Ok(()) => break,
                                    Err(back) => {
                                        v = back;
                                        std::thread::yield_now();
                                    }
                                }
                            }
                        }
                    })
                })
                .collect();
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    let q = q.clone();
                    let sum = sum.clone();
                    std::thread::spawn(move || {
                        let mut got = 0u64;
                        let mut acc = 0u64;
                        while got < PER {
                            if let Some(v) = q.pop() {
                                acc += v;
                                got += 1;
                            } else {
                                std::thread::yield_now();
                            }
                        }
                        sum.fetch_add(acc, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in producers.into_iter().chain(consumers) {
                h.join().unwrap();
            }
            let n = 2 * PER;
            assert_eq!(sum.load(Ordering::Relaxed), n * (n + 1) / 2);
        }
    }
}
