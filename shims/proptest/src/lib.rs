//! Offline stand-in for `proptest`: deterministic random-input testing
//! with the same macro and strategy surface the workspace uses.
//!
//! Differences from the real crate: inputs are generated from a
//! deterministic per-test seed (derived from the test's module path and
//! name), and failing cases are **not shrunk** — the failure message
//! reports the case index so a run is reproducible by construction.

/// Test-runner plumbing: config, RNG, case outcome.
pub mod test_runner {
    use std::fmt;

    /// Subset of proptest's run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config requiring `cases` passing cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed — the whole test fails.
        Fail(String),
        /// `prop_assume!` rejected the inputs — the case is skipped.
        Reject(String),
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Outcome of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic generator state (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG seeded from an identifying string (FNV-1a hash).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform float in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform index in `[0, bound)`; `bound` must be non-zero.
        pub fn index(&mut self, bound: usize) -> usize {
            (self.next_u64() % bound as u64) as usize
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Something that can generate values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + rng.next_f64() * (self.end - self.start);
            // Guard against rounding up to the excluded endpoint.
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "empty range strategy");
            // next_u64()/(2^64-1) spans [0, 1] inclusive.
            let u = rng.next_u64() as f64 / u64::MAX as f64;
            start + u * (end - start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + (rng.next_f64() as f32) * (self.end - self.start);
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy!(
        (A),
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F)
    );
}

/// `any::<T>()` — canonical strategy for a type.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Canonical whole-domain strategy for `T`.
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy,
    {
        Any(PhantomData)
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Admissible collection lengths: `[min, max)`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of element-strategy outputs.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max - self.size.min;
            let len = if span <= 1 {
                self.size.min
            } else {
                self.size.min + rng.index(span)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample::select`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly among fixed options.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Uniform choice among `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.index(self.options.len())].clone()
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespaced strategy modules, as in the real crate's prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Define property tests. Each `#[test] fn name(arg in strategy, ...)`
/// becomes a standard test that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr) $(#[test] fn $name:ident ($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                // The attempt cap bounds pathological prop_assume! filters.
                while passed < config.cases && attempts < config.cases.saturating_mul(16) {
                    attempts += 1;
                    let outcome: $crate::test_runner::TestCaseResult = (|| {
                        let ($($pat,)+) = (
                            $($crate::strategy::Strategy::generate(&($strat), &mut rng),)+
                        );
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => passed += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "property '{}' failed at case {}: {}",
                                stringify!($name),
                                attempts,
                                msg
                            );
                        }
                    }
                }
                assert!(
                    passed >= config.cases,
                    "property '{}' exhausted attempts: {}/{} cases passed \
                     (prop_assume! rejected too much)",
                    stringify!($name),
                    passed,
                    config.cases
                );
            }
        )*
    };
}

/// Fallible assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fallible equality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fallible inequality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}

/// Skip cases whose inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in 0.0f64..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn maps_apply(v in (0u64..10).prop_map(|x| x * 2)) {
            prop_assert_eq!(v % 2, 0);
            prop_assert!(v < 20);
        }

        #[test]
        fn select_picks_an_option(c in prop::sample::select(vec![2u32, 4, 6])) {
            prop_assert!(c == 2 || c == 4 || c == 6);
        }

        #[test]
        fn assume_skips(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]
        #[test]
        fn config_cases_run(_x in any::<bool>()) {
            prop_assert!(true);
        }
    }
}
