//! Offline stand-in for `serde_json`: a concrete [`Value`] tree, the
//! `json!` construction macro (tt-muncher, so values may be arbitrary
//! expressions or nested `{...}` literals), and `to_string` /
//! `to_string_pretty` emitting standards-compliant JSON. Object key order
//! is insertion order, matching how the experiment sinks build rows.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The elements when this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Look up `key` when this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<f32> for Value {
    fn from(f: f32) -> Self {
        Value::Float(f as f64)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        match i64::try_from(v) {
            Ok(i) => Value::Int(i),
            Err(_) => Value::UInt(v),
        }
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::from(v as u64)
    }
}
macro_rules! from_small_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Int(v as i64)
            }
        }
    )*};
}
from_small_int!(i8, i16, i32, i64, u8, u16, u32);

macro_rules! from_ref_copy {
    ($($t:ty),*) => {$(
        impl From<&$t> for Value {
            fn from(v: &$t) -> Self {
                Value::from(*v)
            }
        }
    )*};
}
from_ref_copy!(bool, f32, f64, i8, i16, i32, i64, u8, u16, u32, u64, usize);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}
impl<T: Into<Value> + Clone, const N: usize> From<[T; N]> for Value {
    fn from(v: [T; N]) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{}` prints integral floats without a dot; both forms are valid
        // JSON numbers.
        out.push_str(&format!("{f}"));
    } else {
        // JSON has no NaN/Inf; mirror serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn render(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    let (nl, pad, pad_close, colon) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * (depth + 1)),
            " ".repeat(w * depth),
            ": ",
        ),
        None => ("", String::new(), String::new(), ":"),
    };
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                render(item, out, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                escape_into(out, k);
                out.push_str(colon);
                render(v, out, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    /// Compact JSON.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        render(self, &mut s, None, 0);
        f.write_str(&s)
    }
}

/// Serialization error (cannot occur for `Value` trees; kept for
/// call-site compatibility with the real crate's `Result` API).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Compact JSON text.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut s = String::new();
    render(value, &mut s, None, 0);
    Ok(s)
}

/// Two-space-indented JSON text.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut s = String::new();
    render(value, &mut s, Some(2), 0);
    Ok(s)
}

/// Build a [`Value`] from a JSON-ish literal. Values may be nested
/// `{...}` objects, `null`, or arbitrary Rust expressions convertible
/// with `Value::from`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($body:tt)* }) => {{
        #[allow(unused_mut, clippy::vec_init_then_push)]
        let entries = {
            let mut entries: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
                ::std::vec::Vec::new();
            $crate::json_internal!(@object entries () $($body)*);
            entries
        };
        $crate::Value::Object(entries)
    }};
    ($($val:tt)+) => { $crate::Value::from($($val)+) };
}

/// Implementation detail of [`json!`]: munches `"key": value` pairs,
/// accumulating value tokens until a top-level comma.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // End of input.
    (@object $entries:ident ()) => {};
    // Trailing comma.
    (@object $entries:ident () ,) => {};
    // Start a new entry: capture the key, hand off to value munching.
    (@object $entries:ident () $key:literal : $($rest:tt)*) => {
        $crate::json_internal!(@value $entries ($key) [] $($rest)*)
    };
    // Value finished by a top-level comma: emit, continue with the rest.
    (@value $entries:ident ($key:literal) [$($val:tt)+] , $($rest:tt)*) => {
        $entries.push(($key.to_string(), $crate::json!($($val)+)));
        $crate::json_internal!(@object $entries () $($rest)*);
    };
    // Value runs to end of input: emit.
    (@value $entries:ident ($key:literal) [$($val:tt)+]) => {
        $entries.push(($key.to_string(), $crate::json!($($val)+)));
    };
    // Accumulate one more value token.
    (@value $entries:ident ($key:literal) [$($val:tt)*] $next:tt $($rest:tt)*) => {
        $crate::json_internal!(@value $entries ($key) [$($val)* $next] $($rest)*)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_nesting() {
        let x = 2.5f64;
        let v = json!({
            "name": "chain",
            "n": 3u32,
            "ratio": x * 2.0,
            "inner": {"a": 1, "b": [1u32, 2, 3].to_vec()},
            "none": null,
        });
        assert_eq!(v.get("name"), Some(&Value::Str("chain".into())));
        assert_eq!(v.get("ratio"), Some(&Value::Float(5.0)));
        assert_eq!(v.get("inner").unwrap().get("a"), Some(&Value::Int(1)));
        assert_eq!(v.get("none"), Some(&Value::Null));
    }

    #[test]
    fn pretty_round_trips_structure() {
        let v = json!({"a": 1, "b": {"c": [1u32].to_vec()}});
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"a\": 1"));
        assert!(s.contains("\"c\": ["));
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, "{\"a\":1,\"b\":{\"c\":[1]}}");
    }

    #[test]
    fn escapes_strings() {
        let v = json!({"s": "a\"b\\c\nd"});
        assert_eq!(to_string(&v).unwrap(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
    }

    #[test]
    fn large_u64_survives() {
        let big = u64::MAX;
        let v = json!({ "x": big });
        assert_eq!(to_string(&v).unwrap(), format!("{{\"x\":{big}}}"));
    }
}
