//! Offline stand-in for `serde_json`: a concrete [`Value`] tree, the
//! `json!` construction macro (tt-muncher, so values may be arbitrary
//! expressions or nested `{...}` literals), and `to_string` /
//! `to_string_pretty` emitting standards-compliant JSON. Object key order
//! is insertion order, matching how the experiment sinks build rows.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The elements when this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Look up `key` when this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric value as `i64` when it fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// Numeric value as `u64` when non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            Value::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// Numeric value as `f64` (integers widen losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<f32> for Value {
    fn from(f: f32) -> Self {
        Value::Float(f as f64)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        match i64::try_from(v) {
            Ok(i) => Value::Int(i),
            Err(_) => Value::UInt(v),
        }
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::from(v as u64)
    }
}
macro_rules! from_small_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Int(v as i64)
            }
        }
    )*};
}
from_small_int!(i8, i16, i32, i64, u8, u16, u32);

macro_rules! from_ref_copy {
    ($($t:ty),*) => {$(
        impl From<&$t> for Value {
            fn from(v: &$t) -> Self {
                Value::from(*v)
            }
        }
    )*};
}
from_ref_copy!(bool, f32, f64, i8, i16, i32, i64, u8, u16, u32, u64, usize);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}
impl<T: Into<Value> + Clone, const N: usize> From<[T; N]> for Value {
    fn from(v: [T; N]) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{}` prints integral floats without a dot; both forms are valid
        // JSON numbers.
        out.push_str(&format!("{f}"));
    } else {
        // JSON has no NaN/Inf; mirror serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn render(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    let (nl, pad, pad_close, colon) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * (depth + 1)),
            " ".repeat(w * depth),
            ": ",
        ),
        None => ("", String::new(), String::new(), ":"),
    };
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                render(item, out, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                escape_into(out, k);
                out.push_str(colon);
                render(v, out, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    /// Compact JSON.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        render(self, &mut s, None, 0);
        f.write_str(&s)
    }
}

/// Serialization error (cannot occur for `Value` trees; kept for
/// call-site compatibility with the real crate's `Result` API).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Compact JSON text.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut s = String::new();
    render(value, &mut s, None, 0);
    Ok(s)
}

/// Two-space-indented JSON text.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut s = String::new();
    render(value, &mut s, Some(2), 0);
    Ok(s)
}

/// Build a [`Value`] from a JSON-ish literal. Values may be nested
/// `{...}` objects, `null`, or arbitrary Rust expressions convertible
/// with `Value::from`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($body:tt)* }) => {{
        #[allow(unused_mut, clippy::vec_init_then_push)]
        let entries = {
            let mut entries: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
                ::std::vec::Vec::new();
            $crate::json_internal!(@object entries () $($body)*);
            entries
        };
        $crate::Value::Object(entries)
    }};
    ($($val:tt)+) => { $crate::Value::from($($val)+) };
}

/// Implementation detail of [`json!`]: munches `"key": value` pairs,
/// accumulating value tokens until a top-level comma.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // End of input.
    (@object $entries:ident ()) => {};
    // Trailing comma.
    (@object $entries:ident () ,) => {};
    // Start a new entry: capture the key, hand off to value munching.
    (@object $entries:ident () $key:literal : $($rest:tt)*) => {
        $crate::json_internal!(@value $entries ($key) [] $($rest)*)
    };
    // Value finished by a top-level comma: emit, continue with the rest.
    (@value $entries:ident ($key:literal) [$($val:tt)+] , $($rest:tt)*) => {
        $entries.push(($key.to_string(), $crate::json!($($val)+)));
        $crate::json_internal!(@object $entries () $($rest)*);
    };
    // Value runs to end of input: emit.
    (@value $entries:ident ($key:literal) [$($val:tt)+]) => {
        $entries.push(($key.to_string(), $crate::json!($($val)+)));
    };
    // Accumulate one more value token.
    (@value $entries:ident ($key:literal) [$($val:tt)*] $next:tt $($rest:tt)*) => {
        $crate::json_internal!(@value $entries ($key) [$($val)* $next] $($rest)*)
    };
}

// ---------------------------------------------------------------------
// parsing
// ---------------------------------------------------------------------

/// Parse error with a byte offset, mirroring the real crate's
/// line/column diagnostics at the fidelity the workspace needs.
#[derive(Debug)]
pub struct ParseError {
    /// What went wrong.
    pub message: &'static str,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: &'static str) -> Result<T, ParseError> {
        Err(ParseError {
            message,
            offset: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, lit: &'static str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            self.err("invalid literal")
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => self.expect_literal("null", Value::Null),
            Some(b't') => self.expect_literal("true", Value::Bool(true)),
            Some(b'f') => self.expect_literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(_) => self.err("unexpected character"),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Value::Array(items));
            }
            if !self.eat(b',') {
                return self.err("expected ',' or ']'");
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.pos += 1; // '{'
        let mut entries = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return self.err("expected object key");
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return self.err("expected ':'");
            }
            entries.push((key, self.value()?));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Value::Object(entries));
            }
            if !self.eat(b',') {
                return self.err("expected ',' or '}'");
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(code) = hex else {
                                return self.err("invalid \\u escape");
                            };
                            self.pos += 4;
                            // Surrogate pairs don't occur in this
                            // workspace's output; map lone surrogates to
                            // the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                _ => {
                    // Copy the full UTF-8 sequence starting at `b`.
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let Some(chunk) = self.bytes.get(start..start + len) else {
                        return self.err("truncated UTF-8 sequence");
                    };
                    let Ok(s) = std::str::from_utf8(chunk) else {
                        return self.err("invalid UTF-8 in string");
                    };
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.eat(b'.') {
            is_float = true;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if !self.eat(b'+') {
                let _ = self.eat(b'-');
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        match text.parse::<f64>() {
            Ok(f) => Ok(Value::Float(f)),
            Err(_) => self.err("invalid number"),
        }
    }
}

/// Parse one JSON document from `s` (trailing whitespace allowed).
pub fn from_str(s: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_nesting() {
        let x = 2.5f64;
        let v = json!({
            "name": "chain",
            "n": 3u32,
            "ratio": x * 2.0,
            "inner": {"a": 1, "b": [1u32, 2, 3].to_vec()},
            "none": null,
        });
        assert_eq!(v.get("name"), Some(&Value::Str("chain".into())));
        assert_eq!(v.get("ratio"), Some(&Value::Float(5.0)));
        assert_eq!(v.get("inner").unwrap().get("a"), Some(&Value::Int(1)));
        assert_eq!(v.get("none"), Some(&Value::Null));
    }

    #[test]
    fn pretty_round_trips_structure() {
        let v = json!({"a": 1, "b": {"c": [1u32].to_vec()}});
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"a\": 1"));
        assert!(s.contains("\"c\": ["));
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, "{\"a\":1,\"b\":{\"c\":[1]}}");
    }

    #[test]
    fn escapes_strings() {
        let v = json!({"s": "a\"b\\c\nd"});
        assert_eq!(to_string(&v).unwrap(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
    }

    #[test]
    fn large_u64_survives() {
        let big = u64::MAX;
        let v = json!({ "x": big });
        assert_eq!(to_string(&v).unwrap(), format!("{{\"x\":{big}}}"));
    }

    #[test]
    fn parse_round_trips_compact_output() {
        let v = json!({
            "name": "surge \"x\"\n",
            "n": -3,
            "big": u64::MAX,
            "f": 2.5f64,
            "arr": [1u32, 2, 3].to_vec(),
            "obj": {"nested": true, "none": null},
        });
        let text = to_string(&v).unwrap();
        let back = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parse_handles_whitespace_and_exponents() {
        let v = from_str(" { \"a\" : [ 1.5e3 , -2 ] , \"b\" : false } \n").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[0].as_f64(),
            Some(1500.0)
        );
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_i64(),
            Some(-2)
        );
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str("{\"a\": }").is_err());
        assert!(from_str("[1, 2").is_err());
        assert!(from_str("{} trailing").is_err());
        assert!(from_str("\"unterminated").is_err());
    }

    #[test]
    fn accessors_coerce_numbers() {
        let v = from_str("{\"i\":7,\"u\":18446744073709551615,\"f\":1.25,\"s\":\"x\"}").unwrap();
        assert_eq!(v.get("i").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("i").unwrap().as_f64(), Some(7.0));
        assert_eq!(v.get("u").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(v.get("u").unwrap().as_i64(), None);
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.25));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
    }
}
