//! Offline stand-in for the `rand` crate.
//!
//! Implements the exact surface the workspace uses: `SmallRng` seeded via
//! `SeedableRng::seed_from_u64`, and the `RngExt` extension methods
//! `random::<T>()` and `random_range(a..b)`. The generator is
//! xoshiro256++ (the algorithm behind the real `SmallRng` on 64-bit
//! targets), seeded through splitmix64, so streams are deterministic,
//! well-distributed, and cheap.

use std::ops::Range;

/// Core random-number source: 64 raw bits per call.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a small seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// splitmix64 step — used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Small, fast generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the real crate's `SmallRng` algorithm on 64-bit.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible uniformly from raw bits (`rng.random::<T>()`).
pub trait Random: Sized {
    /// Draw one uniformly distributed value.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Random for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_random {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_random!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types drawable uniformly from a half-open range. Generic over the
/// *element* type (as in the real crate), so integer literals at call
/// sites unify with the annotated result type.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[start, end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start < end, "empty random_range");
                let span = (end as i128 - start as i128) as u128;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
        assert!(start < end, "empty random_range");
        start + f64::random_from(rng) * (end - start)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
        assert!(start < end, "empty random_range");
        start + f32::random_from(rng) * (end - start)
    }
}

/// Convenience extension methods, blanket-implemented for every source.
pub trait RngExt: RngCore {
    /// Uniform value of `T`.
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random_from(self)
    }

    /// Uniform value in `range`.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v: u64 = r.random_range(10..20);
            assert!((10..20).contains(&v));
            let i: usize = r.random_range(0..3);
            assert!(i < 3);
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut hits = [0u32; 8];
        for _ in 0..8000 {
            hits[r.random_range(0usize..8)] += 1;
        }
        for h in hits {
            assert!((600..1400).contains(&h), "bucket {h} out of tolerance");
        }
    }
}
