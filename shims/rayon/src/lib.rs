//! Offline stand-in for `rayon`: `into_par_iter().map().collect()` with
//! a sequential implementation. This container exposes a single CPU, so
//! the real crate's work-stealing pool would not run anything in
//! parallel here anyway; the API shape (and closure `Sync + Send`
//! requirements' absence) is all callers rely on.

use std::ops::Range;

/// A "parallel" iterator — sequential under the hood.
pub struct ParIter<I> {
    inner: I,
}

impl<I: Iterator> ParIter<I> {
    /// Transform each element.
    pub fn map<R, F: FnMut(I::Item) -> R>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter {
            inner: self.inner.map(f),
        }
    }

    /// Keep matching elements.
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
        ParIter {
            inner: self.inner.filter(f),
        }
    }

    /// Collect into any `FromIterator` target.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.inner.collect()
    }

    /// Apply `f` to every element.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.inner.for_each(f)
    }

    /// Sum the elements.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.inner.sum()
    }
}

/// Conversion into a [`ParIter`].
pub trait IntoParallelIterator: Sized {
    /// Element type.
    type Item;
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;

    /// Begin "parallel" iteration.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T> IntoParallelIterator for Range<T>
where
    Range<T>: Iterator<Item = T>,
{
    type Item = T;
    type Iter = Range<T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter { inner: self }
    }
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter {
            inner: self.into_iter(),
        }
    }
}

/// The customary glob-import module.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_matches_sequential() {
        let out: Vec<u64> = (0..10u64).into_par_iter().map(|i| i * i).collect();
        let expect: Vec<u64> = (0..10u64).map(|i| i * i).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn vec_source() {
        let out: Vec<i32> = vec![3, 1, 2].into_par_iter().filter(|&x| x > 1).collect();
        assert_eq!(out, vec![3, 2]);
    }
}
