//! Offline stand-in for `criterion`: runs each benchmark closure in a
//! calibrated timing loop and prints a mean `ns/iter` line. No warmup
//! statistics, outlier analysis, or HTML reports — just honest wall-clock
//! means, which is what the paper-comparison benches need.
//!
//! Target time per benchmark is ~`CRITERION_SHIM_MS` milliseconds
//! (default 120), overridable via that environment variable to trade
//! precision for total run time.
//!
//! Like real criterion, a positional command-line argument filters by
//! substring: `cargo bench -p sg-bench -- fr_backend` runs only the
//! benchmarks whose `group/name` contains `fr_backend`.

use std::hint;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Substring filter from the command line (first non-flag argument),
/// matching real criterion's positional-filter behaviour.
fn name_filter() -> Option<&'static str> {
    static FILTER: OnceLock<Option<String>> = OnceLock::new();
    FILTER
        .get_or_init(|| std::env::args().skip(1).find(|a| !a.starts_with('-')))
        .as_deref()
}

fn selected(full_name: &str) -> bool {
    name_filter().is_none_or(|f| full_name.contains(f))
}

/// Re-export so call sites may use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How per-iteration inputs are batched in [`Bencher::iter_batched`].
/// The shim times each routine invocation individually, so the variants
/// only document intent.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: batch many per allocation.
    SmallInput,
    /// Large inputs: fewer per batch.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

fn target_time() -> Duration {
    let ms = std::env::var("CRITERION_SHIM_MS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(120);
    Duration::from_millis(ms.max(1))
}

/// Measurement state handed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by `iter`/`iter_batched`.
    mean_ns: f64,
    /// Iterations actually timed.
    iters: u64,
    target: Duration,
}

impl Bencher {
    fn new(target: Duration) -> Self {
        Bencher {
            mean_ns: f64::NAN,
            iters: 0,
            target,
        }
    }

    /// Time `routine` repeatedly and record the mean cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the batch until it is long enough to time
        // reliably (≥ ~1 ms), then run batches until the target elapses.
        let mut batch: u64 = 1;
        let batch_floor = Duration::from_millis(1);
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                hint::black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= batch_floor || batch >= 1 << 24 {
                break;
            }
            batch *= 8;
        }
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while total < self.target {
            let t0 = Instant::now();
            for _ in 0..batch {
                hint::black_box(routine());
            }
            total += t0.elapsed();
            iters += batch;
        }
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }

    /// Time `routine` over inputs produced by `setup`; setup cost is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while total < self.target {
            let input = setup();
            let t0 = Instant::now();
            hint::black_box(routine(input));
            total += t0.elapsed();
            iters += 1;
            if iters >= 1 << 22 {
                break;
            }
        }
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

fn report(group: Option<&str>, name: &str, b: &Bencher, throughput: Option<Throughput>) {
    let full = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    let mut line = format!(
        "bench {full:<40} {:>12.1} ns/iter ({} iters)",
        b.mean_ns, b.iters
    );
    if let Some(Throughput::Elements(n)) = throughput {
        if n > 0 && b.mean_ns > 0.0 {
            let meps = (n as f64) / b.mean_ns * 1e3;
            line.push_str(&format!(" {meps:>10.2} Melem/s"));
        }
    }
    println!("{line}");
}

/// Benchmark registry/runner (the `c` in `fn bench(c: &mut Criterion)`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if !selected(name) {
            return self;
        }
        let mut b = Bencher::new(target_time());
        f(&mut b);
        report(None, name, &b, None);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Attach a throughput so reports derive rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for compatibility; the shim sizes runs by wall clock.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if !selected(&format!("{}/{name}", self.name)) {
            return self;
        }
        let mut b = Bencher::new(target_time());
        f(&mut b);
        report(Some(&self.name), name, &b, self.throughput);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        std::env::set_var("CRITERION_SHIM_MS", "5");
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        std::env::set_var("CRITERION_SHIM_MS", "5");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
