//! No-op `#[derive(Serialize, Deserialize)]`.
//!
//! Nothing in this workspace consumes serde impls generically (the only
//! JSON producer operates on concrete `serde_json::Value` trees), so the
//! derives exist purely to keep struct annotations compiling. They expand
//! to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
