//! Offline stand-in for `serde`: the two marker traits plus no-op derive
//! macros. The workspace's derives are annotations only — no code path
//! serializes through the trait — so empty traits keep every call site
//! source-compatible with the real crate.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of serde's `Serialize` (no-op here).
pub trait Serialize {}

/// Marker counterpart of serde's `Deserialize` (no-op here).
pub trait Deserialize<'de>: Sized {}
