//! Offline stand-in for `parking_lot`: a non-poisoning `Mutex` whose
//! `lock()` returns the guard directly (no `Result`), built on the std
//! mutex. Poison is deliberately swallowed — parking_lot has no poisoning,
//! and callers written against it never handle it.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};

/// Mutual exclusion with parking_lot's ergonomics.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard; unlocks on drop.
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_mutates() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn contended_from_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
